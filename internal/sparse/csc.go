package sparse

import (
	"fmt"
	"iter"
	"slices"
)

// narrowRowLimit is the largest row count whose indexes fit a uint16: rows
// are in [0, NumRows) and NumRows <= 1<<16 means every index is <= 65535.
const narrowRowLimit = 1 << 16

// CSC is a compressed-sparse-columns matrix: Offsets[c]..Offsets[c+1] index
// the row indexes and Values of column c (Fig. 4 of the paper).
//
// Row-index storage is width-adaptive: matrices with NumRows <= 65536 store
// 16-bit indexes, larger ones 32-bit, halving the index footprint of the
// scaled datasets while keeping full-size graphs addressable. The width is a
// storage detail — Col returns a Rows view and all accessors speak int32 —
// and both widths are pinned bit-identical through the equivalence suites.
type CSC struct {
	NumRows, NumCols int32
	Offsets          []int64 // len NumCols+1
	Values           []float32

	// Exactly one of ix16/ix32 is non-nil (for NNZ > 0). Constructors pick
	// ix16 whenever NumRows allows it; ForceWide converts to ix32 in place.
	ix16 []uint16
	ix32 []int32
}

// Rows is a read-only view of one column's row indexes (or of the whole
// index array). It adapts over the matrix's physical index width: hot loops
// branch once per column on Wide()/Narrow(), everything else ranges over
// All() or calls At.
type Rows struct {
	n16 []uint16
	n32 []int32
}

// Len reports the number of indexes in the view.
func (r Rows) Len() int {
	if r.n32 != nil {
		return len(r.n32)
	}
	return len(r.n16)
}

// At returns index i as an int32 regardless of storage width.
func (r Rows) At(i int) int32 {
	if r.n32 != nil {
		return r.n32[i]
	}
	return int32(r.n16[i])
}

// Wide returns the backing int32 slice, or nil when the view is 16-bit.
// Specialized hot loops branch once per column on it.
func (r Rows) Wide() []int32 { return r.n32 }

// Narrow returns the backing uint16 slice, or nil when the view is 32-bit.
func (r Rows) Narrow() []uint16 { return r.n16 }

// All ranges over (position, row index) pairs independent of storage width.
func (r Rows) All() iter.Seq2[int, int32] {
	return func(yield func(int, int32) bool) {
		if r.n32 != nil {
			for i, v := range r.n32 {
				if !yield(i, v) {
					return
				}
			}
			return
		}
		for i, v := range r.n16 {
			if !yield(i, int32(v)) {
				return
			}
		}
	}
}

// Int32s appends the view's indexes to dst and returns the extended slice.
func (r Rows) Int32s(dst []int32) []int32 {
	if r.n32 != nil {
		return append(dst, r.n32...)
	}
	dst = slices.Grow(dst, len(r.n16))
	for _, v := range r.n16 {
		dst = append(dst, int32(v))
	}
	return dst
}

// useNarrow reports whether a matrix with the given row count stores 16-bit
// indexes.
func useNarrow(rows int32) bool { return int64(rows) <= narrowRowLimit }

// allocIndexes sizes the index storage for n entries at the width NumRows
// calls for.
func (c *CSC) allocIndexes(n int) {
	if useNarrow(c.NumRows) {
		c.ix16 = make([]uint16, n)
		c.ix32 = nil
		return
	}
	c.ix32 = make([]int32, n)
	c.ix16 = nil
}

// IndexBits reports the physical index width in bits (16 or 32).
func (c *CSC) IndexBits() int {
	if c.ix32 != nil {
		return 32
	}
	return 16
}

// Index returns the row index of entry i (positions follow Offsets).
func (c *CSC) Index(i int64) int32 {
	if c.ix32 != nil {
		return c.ix32[i]
	}
	return int32(c.ix16[i])
}

// RowIndexes returns a Rows view over the whole index array, in offset
// order — the width-adaptive replacement for ranging over a raw index slice.
func (c *CSC) RowIndexes() Rows { return Rows{n16: c.ix16, n32: c.ix32} }

// IndexesInt32 returns the row indexes as an int32 slice: the backing array
// itself for wide matrices, a fresh widened copy for narrow ones. Mutating
// the result of a wide matrix mutates the matrix; use it for conversions and
// tests, not hot paths.
func (c *CSC) IndexesInt32() []int32 {
	if c.ix32 != nil {
		return c.ix32
	}
	out := make([]int32, len(c.ix16))
	for i, v := range c.ix16 {
		out[i] = int32(v)
	}
	return out
}

// ForceWide converts the matrix to 32-bit index storage in place. It exists
// for the narrow-vs-wide equivalence tests and for ablations; results are
// bit-identical either way.
func (c *CSC) ForceWide() {
	if c.ix32 != nil || c.ix16 == nil {
		if c.ix32 == nil {
			c.ix32 = []int32{}
			c.ix16 = nil
		}
		return
	}
	c.ix32 = make([]int32, len(c.ix16))
	for i, v := range c.ix16 {
		c.ix32[i] = int32(v)
	}
	c.ix16 = nil
}

// Equal reports whether the two matrices hold the same logical content
// (dimensions, offsets, row indexes, values), regardless of index width.
func (c *CSC) Equal(o *CSC) bool {
	if c.NumRows != o.NumRows || c.NumCols != o.NumCols ||
		!slices.Equal(c.Offsets, o.Offsets) || !slices.Equal(c.Values, o.Values) {
		return false
	}
	n := int64(c.NNZ())
	for i := int64(0); i < n; i++ {
		if c.Index(i) != o.Index(i) {
			return false
		}
	}
	return true
}

// CSCFromParts wraps pre-built compressed arrays (32-bit indexes) as a CSC,
// aliasing the given slices. It performs no validation; callers that need
// the structural invariants run Validate.
func CSCFromParts(rows, cols int32, offsets []int64, indexes []int32, values []float32) *CSC {
	return &CSC{NumRows: rows, NumCols: cols, Offsets: offsets, ix32: indexes, Values: values}
}

// CSCFromCOO builds a CSC matrix. The input is coalesced first (duplicate
// coordinates merged in source order, exact zeros dropped) without being
// mutated. Large inputs run the parallel counting-sort build; the output is
// bit-identical at every worker count.
func CSCFromCOO(m *COO) *CSC { return CSCFromCOOWorkers(m, 0) }

// CSCFromCOOWorkers is CSCFromCOO over an explicit worker count (0 selects
// GOMAXPROCS, 1 forces the serial path).
func CSCFromCOOWorkers(m *COO, workers int) *CSC {
	nnz := len(m.Entries)
	c := &CSC{
		NumRows: m.NumRows,
		NumCols: m.NumCols,
		Offsets: make([]int64, m.NumCols+1),
	}
	if nnz == 0 {
		c.allocIndexes(0)
		c.Values = []float32{}
		return c
	}
	if !useCountingSort(nnz, m.NumRows, m.NumCols) {
		ent := slices.Clone(m.Entries)
		slices.SortStableFunc(ent, entryColRow)
		ent = mergeSortedEntries(ent)
		c.allocIndexes(len(ent))
		c.Values = make([]float32, len(ent))
		if c.ix16 != nil {
			for i, e := range ent {
				c.Offsets[e.Col+1]++
				c.ix16[i] = uint16(e.Row)
				c.Values[i] = e.Val
			}
		} else {
			for i, e := range ent {
				c.Offsets[e.Col+1]++
				c.ix32[i] = e.Row
				c.Values[i] = e.Val
			}
		}
		for col := int32(0); col < m.NumCols; col++ {
			c.Offsets[col+1] += c.Offsets[col]
		}
		return c
	}

	pool := sortPool(workers, nnz, m.NumRows, m.NumCols)
	// The input stays untouched: sort a copy, then merge straight into the
	// compressed arrays.
	buf := make([]Entry, nnz)
	pool.ForEachBlock(nnz, func(_, lo, hi int) { copy(buf[lo:hi], m.Entries[lo:hi]) })
	scratch := make([]Entry, nnz)
	colStart := sortByColRow(buf, scratch, m.NumRows, m.NumCols, pool)

	// Merge duplicates in place per column block (duplicates never span a
	// column boundary) while counting each column's kept entries.
	nCols := int(m.NumCols)
	nb := pool.Blocks(nCols)
	kept := make([]int32, nb)
	pool.ForEachBlock(nCols, func(w, clo, chi int) {
		lo, hi := int(colStart[clo]), int(colStart[chi])
		out := lo
		for i := lo; i < hi; {
			e := buf[i]
			j := i + 1
			for j < hi && buf[j].Row == e.Row && buf[j].Col == e.Col {
				e.Val += buf[j].Val
				j++
			}
			if e.Val != 0 {
				buf[out] = e
				c.Offsets[e.Col+1]++
				out++
			}
			i = j
		}
		kept[w] = int32(out - lo) //gearbox:narrow-ok a block keeps at most nnz entries, capped at MaxInt32 by the builder
	})
	for col := 0; col < nCols; col++ {
		c.Offsets[col+1] += c.Offsets[col]
	}
	total := int(c.Offsets[nCols])
	c.allocIndexes(total)
	c.Values = make([]float32, total)
	// Block w's kept entries sit compacted at its span start; their final
	// position starts at Offsets[clo] (the kept total of all earlier columns).
	pool.ForEachBlock(nCols, func(w, clo, chi int) {
		src := buf[colStart[clo] : int(colStart[clo])+int(kept[w])]
		d := int(c.Offsets[clo])
		if c.ix16 != nil {
			for i, e := range src {
				c.ix16[d+i] = uint16(e.Row)
				c.Values[d+i] = e.Val
			}
		} else {
			for i, e := range src {
				c.ix32[d+i] = e.Row
				c.Values[d+i] = e.Val
			}
		}
	})
	return c
}

// NNZ reports the number of non-zeros.
func (c *CSC) NNZ() int { return len(c.Values) }

// ColLen reports the number of non-zeros in column col.
func (c *CSC) ColLen(col int32) int { return int(c.Offsets[col+1] - c.Offsets[col]) }

// Col returns the row indexes and values of column col as views that alias
// the matrix storage.
func (c *CSC) Col(col int32) (Rows, []float32) {
	lo, hi := c.Offsets[col], c.Offsets[col+1]
	if c.ix32 != nil {
		return Rows{n32: c.ix32[lo:hi]}, c.Values[lo:hi]
	}
	return Rows{n16: c.ix16[lo:hi]}, c.Values[lo:hi]
}

// ToCOO converts back to coordinate form.
func (c *CSC) ToCOO() *COO {
	m := NewCOO(c.NumRows, c.NumCols)
	m.Entries = make([]Entry, 0, c.NNZ())
	for col := int32(0); col < c.NumCols; col++ {
		for i := c.Offsets[col]; i < c.Offsets[col+1]; i++ {
			m.Entries = append(m.Entries, Entry{Row: c.Index(i), Col: col, Val: c.Values[i]})
		}
	}
	return m
}

// Validate checks the structural invariants of the format. It is used by
// property tests and by the partitioner before accepting a matrix.
func (c *CSC) Validate() error {
	//gearbox:narrow-ok equality check against an int32 dimension; a wrapped length would simply fail the comparison
	if int32(len(c.Offsets)) != c.NumCols+1 {
		return fmt.Errorf("sparse: offsets length %d, want %d", len(c.Offsets), c.NumCols+1)
	}
	if c.Offsets[0] != 0 {
		return fmt.Errorf("sparse: offsets[0]=%d, want 0", c.Offsets[0])
	}
	nIdx := len(c.ix32)
	if c.ix32 == nil {
		nIdx = len(c.ix16)
	}
	if c.Offsets[c.NumCols] != int64(len(c.Values)) || len(c.Values) != nIdx {
		return fmt.Errorf("sparse: offsets end %d vs values %d / indexes %d",
			c.Offsets[c.NumCols], len(c.Values), nIdx)
	}
	if c.ix16 != nil && !useNarrow(c.NumRows) {
		return fmt.Errorf("sparse: 16-bit indexes with %d rows", c.NumRows)
	}
	for col := int32(0); col < c.NumCols; col++ {
		if c.Offsets[col] > c.Offsets[col+1] {
			return fmt.Errorf("sparse: column %d has negative length", col)
		}
		for i := c.Offsets[col]; i < c.Offsets[col+1]; i++ {
			if r := c.Index(i); r < 0 || r >= c.NumRows {
				return fmt.Errorf("sparse: column %d row index %d out of range", col, r)
			}
			if i > c.Offsets[col] && c.Index(i-1) >= c.Index(i) {
				return fmt.Errorf("sparse: column %d rows not strictly increasing at %d", col, i)
			}
		}
	}
	return nil
}

// CSCPair is the CSC_Pair layout of Fig. 4: the Indexes and Values arrays are
// interleaved into a single array of words so a single Walker can stream a
// column as (index,value) word pairs.
type CSCPair struct {
	NumRows, NumCols int32
	Offsets          []int64 // word offsets into Pair; len NumCols+1; Offsets[c+1]-Offsets[c] = 2*colLen
	Pair             []PairWord
}

// PairWord is one word of the interleaved array. Even positions hold row
// indexes, odd positions hold values; the struct keeps both interpretations
// so tests can stay type-safe while the simulator streams raw words.
type PairWord struct {
	Index int32
	Value float32
}

// PairFromCSC interleaves a CSC matrix into CSC_Pair form. Offsets are in
// words: column c spans Pair[Offsets[c]:Offsets[c+1]] with stride 2.
func PairFromCSC(c *CSC) *CSCPair {
	p := &CSCPair{
		NumRows: c.NumRows,
		NumCols: c.NumCols,
		Offsets: make([]int64, c.NumCols+1),
		Pair:    make([]PairWord, 0, 2*c.NNZ()),
	}
	for col := int32(0); col < c.NumCols; col++ {
		p.Offsets[col] = int64(len(p.Pair))
		for i := c.Offsets[col]; i < c.Offsets[col+1]; i++ {
			p.Pair = append(p.Pair, PairWord{Index: c.Index(i)}, PairWord{Value: c.Values[i]})
		}
	}
	p.Offsets[c.NumCols] = int64(len(p.Pair))
	return p
}

// ColWords returns the (index,value) word span of column col.
func (p *CSCPair) ColWords(col int32) []PairWord {
	return p.Pair[p.Offsets[col]:p.Offsets[col+1]]
}
