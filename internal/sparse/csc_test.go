package sparse

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// fig4Matrix builds the exact 6x6 example matrix of Fig. 4 in the paper:
//
//	col:   0   1   2   3   4   5
//	row0:      v3      v6
//	row1: v1              v7
//	row2:                      v9
//	row3:      v2      v5
//	row4: v0           v4
//	row5:                      v8
//
// whose CSC form is Values=[v1,v0,v3,v2,v6,v5,v4,v7,v9,v8],
// Indexes=[1,4,0,3,0,3,4,1,2,5], Offsets=[0,2,4,4,7,8,10].
// Values here encode vK as 20+K so the test can check ordering.
func fig4Matrix() *COO {
	m := NewCOO(6, 6)
	m.Add(1, 0, 21) // v1
	m.Add(4, 0, 20) // v0
	m.Add(0, 1, 23) // v3
	m.Add(3, 1, 22) // v2
	m.Add(0, 3, 26) // v6
	m.Add(3, 3, 25) // v5
	m.Add(4, 3, 24) // v4
	m.Add(1, 4, 27) // v7
	m.Add(2, 5, 29) // v9
	m.Add(5, 5, 28) // v8
	return m
}

func TestCSCMatchesFig4(t *testing.T) {
	c := CSCFromCOO(fig4Matrix())
	wantOffsets := []int64{0, 2, 4, 4, 7, 8, 10}
	for i, w := range wantOffsets {
		if c.Offsets[i] != w {
			t.Fatalf("Offsets[%d] = %d, want %d (paper Fig. 4)", i, c.Offsets[i], w)
		}
	}
	wantIndexes := []int32{1, 4, 0, 3, 0, 3, 4, 1, 2, 5}
	for i, w := range wantIndexes {
		if c.Index(int64(i)) != w {
			t.Fatalf("Indexes[%d] = %d, want %d (paper Fig. 4)", i, c.Index(int64(i)), w)
		}
	}
	wantValues := []float32{21, 20, 23, 22, 26, 25, 24, 27, 29, 28} // v1,v0,v3,v2,v6,v5,v4,v7,v9,v8
	for i, w := range wantValues {
		if c.Values[i] != w {
			t.Fatalf("Values[%d] = %v, want %v (paper Fig. 4)", i, c.Values[i], w)
		}
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCSCPairInterleaving(t *testing.T) {
	c := CSCFromCOO(fig4Matrix())
	p := PairFromCSC(c)
	if got, want := len(p.Pair), 2*c.NNZ(); got != want {
		t.Fatalf("pair words = %d, want %d", got, want)
	}
	// Column 3 spans three (index,value) pairs.
	w := p.ColWords(3)
	if len(w) != 6 {
		t.Fatalf("col 3 pair words = %d, want 6", len(w))
	}
	if w[0].Index != 0 || w[1].Value != 26 || w[2].Index != 3 || w[3].Value != 25 {
		t.Fatalf("col 3 words = %+v", w)
	}
	// Offsets double those of CSC.
	for col := int32(0); col <= c.NumCols; col++ {
		if p.Offsets[col] != 2*c.Offsets[col] {
			t.Fatalf("pair offset[%d] = %d, want %d", col, p.Offsets[col], 2*c.Offsets[col])
		}
	}
}

func TestCSCRoundTripCOO(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := randomCOO(rng, 50, 40, 300).Coalesce()
	c := CSCFromCOO(m)
	back := CSCFromCOO(c.ToCOO())
	if !cscEqual(c, back) {
		t.Fatal("COO->CSC->COO->CSC changed the matrix")
	}
}

func TestCSRMirrorsCSC(t *testing.T) {
	m := fig4Matrix()
	r := CSRFromCOO(m)
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if r.NNZ() != m.NNZ() {
		t.Fatalf("CSR NNZ = %d, want %d", r.NNZ(), m.NNZ())
	}
	cols, vals := r.Row(3)
	if len(cols) != 2 || cols[0] != 1 || cols[1] != 3 {
		t.Fatalf("row 3 cols = %v", cols)
	}
	if vals[0] != 22 || vals[1] != 25 {
		t.Fatalf("row 3 vals = %v", vals)
	}
}

func TestCSCValidateCatchesCorruption(t *testing.T) {
	base := func() *CSC { return CSCFromCOO(fig4Matrix()) }

	c := base()
	c.Offsets[0] = 1
	if c.Validate() == nil {
		t.Fatal("validate accepted offsets[0] != 0")
	}

	c = base()
	c.Offsets[2], c.Offsets[3] = c.Offsets[3]+1, c.Offsets[2]
	if c.Validate() == nil {
		t.Fatal("validate accepted decreasing offsets")
	}

	// IndexesInt32 aliases the storage of a wide matrix, so corruption
	// written through it is visible to Validate.
	c = base()
	c.ForceWide()
	c.IndexesInt32()[0] = c.NumRows
	if c.Validate() == nil {
		t.Fatal("validate accepted out-of-range row index")
	}

	c = base()
	c.ForceWide()
	// Column 0 has rows {1,4}; duplicating breaks strict monotonicity.
	c.IndexesInt32()[1] = c.IndexesInt32()[0]
	if c.Validate() == nil {
		t.Fatal("validate accepted non-increasing rows within a column")
	}
}

func TestQuickCSCRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomCOO(rng, 1+rng.Int31n(24), 1+rng.Int31n(24), rng.Intn(128)).Coalesce()
		c := CSCFromCOO(m)
		if c.Validate() != nil {
			return false
		}
		return cscEqual(c, CSCFromCOO(c.ToCOO()))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCSRTransposeAgreesWithCSC(t *testing.T) {
	// Building CSR of M must equal CSC of M^T field-by-field.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomCOO(rng, 1+rng.Int31n(24), 1+rng.Int31n(24), rng.Intn(128)).Coalesce()
		r := CSRFromCOO(m)
		ct := CSCFromCOO(m.Transpose())
		if r.NNZ() != ct.NNZ() {
			return false
		}
		for i := range r.Indexes {
			if r.Indexes[i] != ct.Index(int64(i)) || r.Values[i] != ct.Values[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
