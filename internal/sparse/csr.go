package sparse

import "fmt"

// CSR is a compressed-sparse-rows matrix, the mirror of CSC. The row-oriented
// GearboxV0 baseline and the SpaceA model stream it.
type CSR struct {
	NumRows, NumCols int32
	Offsets          []int64 // len NumRows+1
	Indexes          []int32 // column indices
	Values           []float32
}

// CSRFromCOO builds a CSR matrix from a coordinate list, coalescing first.
// CSR always stores 32-bit indexes (it backs baselines and tests, not the
// simulator's hot path), so narrow CSC storage is widened on conversion.
func CSRFromCOO(m *COO) *CSR {
	t := CSCFromCOO(m.Transpose())
	return &CSR{
		NumRows: t.NumCols,
		NumCols: t.NumRows,
		Offsets: t.Offsets,
		Indexes: t.IndexesInt32(),
		Values:  t.Values,
	}
}

// NNZ reports the number of non-zeros.
func (r *CSR) NNZ() int { return len(r.Values) }

// RowLen reports the number of non-zeros in row row.
func (r *CSR) RowLen(row int32) int { return int(r.Offsets[row+1] - r.Offsets[row]) }

// Row returns the column indexes and values of one row, aliasing storage.
func (r *CSR) Row(row int32) ([]int32, []float32) {
	lo, hi := r.Offsets[row], r.Offsets[row+1]
	return r.Indexes[lo:hi], r.Values[lo:hi]
}

// Validate checks the structural invariants of the format.
func (r *CSR) Validate() error {
	c := CSCFromParts(r.NumCols, r.NumRows, r.Offsets, r.Indexes, r.Values)
	if err := c.Validate(); err != nil {
		return fmt.Errorf("csr (as transposed csc): %w", err)
	}
	return nil
}
