package sparse

import (
	"fmt"
	"math/rand"
	"sort"

	"gearbox/internal/par"
)

// Permutation is a vertex relabeling: New[old] is the new index of vertex
// old, and Old[new] recovers the original. Gearbox applies one symmetric
// permutation to both rows and columns so that the output vector of one
// iteration is directly the input vector of the next (§3.2, §6).
type Permutation struct {
	New []int32 // old -> new
	Old []int32 // new -> old
}

// Identity returns the identity permutation over n vertices.
func Identity(n int32) *Permutation {
	p := &Permutation{New: make([]int32, n), Old: make([]int32, n)}
	for i := int32(0); i < n; i++ {
		p.New[i], p.Old[i] = i, i
	}
	return p
}

// Validate checks that the permutation is a bijection with consistent
// forward and inverse maps.
func (p *Permutation) Validate() error {
	if len(p.New) != len(p.Old) {
		return fmt.Errorf("sparse: permutation maps differ in length: %d vs %d", len(p.New), len(p.Old))
	}
	for old, nw := range p.New {
		if nw < 0 || int(nw) >= len(p.Old) {
			return fmt.Errorf("sparse: permutation image %d out of range", nw)
		}
		if p.Old[nw] != int32(old) {
			return fmt.Errorf("sparse: permutation not inverse-consistent at %d", old)
		}
	}
	return nil
}

// ReorderResult carries a reordered matrix together with the permutation that
// produced it and the boundary of the long region.
type ReorderResult struct {
	Matrix *CSC
	Perm   *Permutation
	// LastLong is the largest new index that belongs to the long region;
	// -1 when there are no long vertices. All vertices with new index in
	// [0, LastLong] correspond to long columns or long rows of the original
	// matrix, matching the comparator-and-latch hardware check (§3.2).
	LastLong int32
	// NumLongCols and NumLongRows count the sets before the union.
	NumLongCols, NumLongRows int
}

// ReorderLongFirst relabels the (square) matrix so that the union of the top
// longFrac columns and top longFrac rows occupies the lowest indices, and the
// remaining vertices are placed in a seeded random order. The randomization
// is the paper's load-balancing shuffle ("we randomize the order of columns
// assigned to a bank and then reorder the matrix so that the long columns and
// long rows are the first", §6). longFrac of 0 still applies the shuffle so
// the 0.00% ablation of Fig. 16a isolates the long-region effect.
func ReorderLongFirst(c *CSC, longFrac float64, seed int64) (*ReorderResult, error) {
	if c.NumRows != c.NumCols {
		return nil, fmt.Errorf("sparse: hybrid reorder requires a square matrix, got %dx%d", c.NumRows, c.NumCols)
	}
	n := c.NumRows
	colLens := ColumnLengths(c)
	rowLens := RowLengths(c)
	longCols := TopFraction(colLens, longFrac)
	longRows := TopFraction(rowLens, longFrac)

	isLong := make([]bool, n)
	for _, v := range longCols {
		isLong[v] = true
	}
	for _, v := range longRows {
		isLong[v] = true
	}

	var longSet, shortSet []int32
	for v := int32(0); v < n; v++ {
		if isLong[v] {
			longSet = append(longSet, v)
		} else {
			shortSet = append(shortSet, v)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(shortSet), func(i, j int) { shortSet[i], shortSet[j] = shortSet[j], shortSet[i] })

	perm := &Permutation{New: make([]int32, n), Old: make([]int32, n)}
	next := int32(0)
	for _, v := range longSet {
		perm.New[v], perm.Old[next] = next, v
		next++
	}
	for _, v := range shortSet {
		perm.New[v], perm.Old[next] = next, v
		next++
	}

	return &ReorderResult{
		Matrix: ApplyPermutation(c, perm),
		Perm:   perm,
		//gearbox:narrow-ok longSet holds distinct column ids, so its size is bounded by NumCols, an int32
		LastLong:    int32(len(longSet)) - 1,
		NumLongCols: len(longCols),
		NumLongRows: len(longRows),
	}, nil
}

// ApplyPermutation relabels both rows and columns of c by perm and rebuilds
// the CSC structure. The relabel and rebuild run on the worker pool at full
// width; output is bit-identical at every worker count.
func ApplyPermutation(c *CSC, perm *Permutation) *CSC {
	return ApplyPermutationWorkers(c, perm, 0)
}

// ApplyPermutationWorkers is ApplyPermutation over an explicit worker count
// (0 selects GOMAXPROCS, 1 forces the serial path). Entry i of the
// intermediate coordinate list is the relabeling of source entry i — a pure
// per-index function — and the rebuild is the deterministic counting-sort
// CSC build, so worker count cannot leak into the result.
func ApplyPermutationWorkers(c *CSC, perm *Permutation, workers int) *CSC {
	nnz := c.NNZ()
	coo := NewCOO(c.NumRows, c.NumCols)
	coo.Entries = make([]Entry, nnz)
	pool := par.New(workers)
	idx := c.RowIndexes()
	pool.ForEachBlock(nnz, func(_, lo, hi int) {
		// Locate the column containing entry lo, then walk forward.
		//gearbox:narrow-ok sort.Search result is bounded by NumCols, an int32
		col := int32(sort.Search(int(c.NumCols), func(k int) bool {
			return c.Offsets[k+1] > int64(lo)
		}))
		if wide := idx.Wide(); wide != nil {
			for i := lo; i < hi; i++ {
				for int64(i) >= c.Offsets[col+1] {
					col++
				}
				coo.Entries[i] = Entry{Row: perm.New[wide[i]], Col: perm.New[col], Val: c.Values[i]}
			}
		} else {
			narrow := idx.Narrow()
			for i := lo; i < hi; i++ {
				for int64(i) >= c.Offsets[col+1] {
					col++
				}
				coo.Entries[i] = Entry{Row: perm.New[narrow[i]], Col: perm.New[col], Val: c.Values[i]}
			}
		}
	})
	return CSCFromCOOWorkers(coo, workers)
}

// PermuteVector relabels a dense vector: out[perm.New[i]] = in[i].
func PermuteVector(in []float32, perm *Permutation) []float32 {
	out := make([]float32, len(in))
	for i, v := range in {
		out[perm.New[i]] = v
	}
	return out
}

// UnpermuteVector inverts PermuteVector: out[i] = in[perm.New[i]].
func UnpermuteVector(in []float32, perm *Permutation) []float32 {
	out := make([]float32, len(in))
	for i := range out {
		out[i] = in[perm.New[i]]
	}
	return out
}
