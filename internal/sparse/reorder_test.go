package sparse

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func squareRandom(rng *rand.Rand, n int32, nnz int) *CSC {
	return CSCFromCOO(randomCOO(rng, n, n, nnz))
}

func TestIdentityPermutation(t *testing.T) {
	p := Identity(5)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	c := squareRandom(rand.New(rand.NewSource(3)), 5, 12)
	if !cscEqual(c, ApplyPermutation(c, p)) {
		t.Fatal("identity permutation changed the matrix")
	}
}

func TestReorderLongFirstMovesLongVertices(t *testing.T) {
	// Build a matrix where vertex 7 has a very long column and vertex 3 a
	// very long row; both must land in the long region.
	m := NewCOO(16, 16)
	for r := int32(0); r < 16; r++ {
		m.Add(r, 7, 1) // long column 7
	}
	for c := int32(0); c < 16; c++ {
		m.Add(3, c, 1) // long row 3
	}
	m.Add(5, 5, 1)
	csc := CSCFromCOO(m)
	res, err := ReorderLongFirst(csc, 0.05, 42) // top 5% of 16 = 1 column + 1 row
	if err != nil {
		t.Fatal(err)
	}
	if res.NumLongCols != 1 || res.NumLongRows != 1 {
		t.Fatalf("long cols=%d rows=%d, want 1/1", res.NumLongCols, res.NumLongRows)
	}
	if res.LastLong != 1 { // union {7, 3} occupies new indices 0 and 1
		t.Fatalf("LastLong = %d, want 1", res.LastLong)
	}
	if n7, n3 := res.Perm.New[7], res.Perm.New[3]; n7 > res.LastLong || n3 > res.LastLong {
		t.Fatalf("long vertices relabeled to %d and %d, beyond LastLong=%d", n7, n3, res.LastLong)
	}
	if err := res.Perm.Validate(); err != nil {
		t.Fatal(err)
	}
	// The long column keeps its length after relabeling.
	if got := res.Matrix.ColLen(res.Perm.New[7]); got != 16 {
		t.Fatalf("relabeled long column length = %d, want 16", got)
	}
}

func TestReorderLongFirstZeroFractionStillShuffles(t *testing.T) {
	c := squareRandom(rand.New(rand.NewSource(9)), 64, 256)
	res, err := ReorderLongFirst(c, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.LastLong != -1 {
		t.Fatalf("LastLong = %d, want -1 with no long vertices", res.LastLong)
	}
	moved := 0
	for v, nw := range res.Perm.New {
		if int32(v) != nw {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("shuffle left every vertex in place (seed must randomize)")
	}
}

func TestReorderRejectsRectangular(t *testing.T) {
	c := CSCFromCOO(randomCOO(rand.New(rand.NewSource(2)), 4, 6, 10))
	if _, err := ReorderLongFirst(c, 0.01, 0); err == nil {
		t.Fatal("rectangular matrix accepted")
	}
}

func TestPermuteUnpermuteVector(t *testing.T) {
	c := squareRandom(rand.New(rand.NewSource(11)), 32, 64)
	res, err := ReorderLongFirst(c, 0.05, 5)
	if err != nil {
		t.Fatal(err)
	}
	v := make([]float32, 32)
	for i := range v {
		v[i] = float32(i) * 1.5
	}
	round := UnpermuteVector(PermuteVector(v, res.Perm), res.Perm)
	for i := range v {
		if round[i] != v[i] {
			t.Fatalf("round-trip[%d] = %v, want %v", i, round[i], v[i])
		}
	}
}

// TestQuickReorderPreservesSpMV is the key semantic property: relabeling both
// dimensions by the same permutation must commute with matrix-vector
// multiplication.
func TestQuickReorderPreservesSpMV(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Int31n(24)
		c := squareRandom(rng, n, rng.Intn(int(n)*3))
		res, err := ReorderLongFirst(c, 0.1, seed)
		if err != nil {
			return false
		}
		if res.Perm.Validate() != nil {
			return false
		}
		x := make([]float32, n)
		for i := range x {
			x[i] = float32(rng.Intn(5))
		}
		// y = M x computed on the original labeling.
		y := denseSpMV(c, x)
		// y' = M' x' on the relabeled matrix, then unpermute.
		yp := denseSpMV(res.Matrix, PermuteVector(x, res.Perm))
		back := UnpermuteVector(yp, res.Perm)
		for i := range y {
			if y[i] != back[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// denseSpMV is a trivial reference y = M*x used only by tests in this package.
func denseSpMV(c *CSC, x []float32) []float32 {
	y := make([]float32, c.NumRows)
	for col := int32(0); col < c.NumCols; col++ {
		rows, vals := c.Col(col)
		for i, r := range rows.All() {
			y[r] += vals[i] * x[col]
		}
	}
	return y
}

func TestQuickPermutationBijective(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Int31n(64)
		c := squareRandom(rng, n, rng.Intn(int(n)*2))
		res, err := ReorderLongFirst(c, rng.Float64()*0.2, seed)
		if err != nil {
			return false
		}
		seen := make([]bool, n)
		for _, nw := range res.Perm.New {
			if seen[nw] {
				return false
			}
			seen[nw] = true
		}
		return res.Perm.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
