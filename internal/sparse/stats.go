package sparse

import (
	"cmp"
	"math"
	"slices"
)

// Stats summarizes the shape of a matrix the way Table 3 and Fig. 5 of the
// paper do.
type Stats struct {
	Rows, Cols int32
	NNZ        int
	Density    float64 // NNZ / (Rows*Cols)
	SizeBytes  int64   // CSC footprint: values + width-adaptive indexes + offsets
	MaxColLen  int
	MaxRowLen  int
	AvgColLen  float64
}

// ComputeStats derives the Table-3 style summary for a matrix.
func ComputeStats(c *CSC) Stats {
	s := Stats{Rows: c.NumRows, Cols: c.NumCols, NNZ: c.NNZ()}
	if c.NumRows > 0 && c.NumCols > 0 {
		s.Density = float64(s.NNZ) / (float64(c.NumRows) * float64(c.NumCols))
	}
	s.SizeBytes = int64(s.NNZ)*int64(4+c.IndexBits()/8) + int64(len(c.Offsets))*8
	rowLens := RowLengths(c)
	for col := int32(0); col < c.NumCols; col++ {
		if l := c.ColLen(col); l > s.MaxColLen {
			s.MaxColLen = l
		}
	}
	for _, l := range rowLens {
		if l > s.MaxRowLen {
			s.MaxRowLen = l
		}
	}
	if c.NumCols > 0 {
		s.AvgColLen = float64(s.NNZ) / float64(c.NumCols)
	}
	return s
}

// HistBin is one bar of the Fig. 5 histogram: the percentage of columns whose
// length falls in (UpperLen/2, UpperLen].
type HistBin struct {
	UpperLen int     // power of two: 1, 2, 4, ...
	Percent  float64 // percentage of all columns
}

// ColumnLengthHistogram bins column lengths by powers of two, reproducing the
// x-axis of Fig. 5. Zero-length columns are excluded, matching the figure
// (its smallest bin is length 1).
func ColumnLengthHistogram(c *CSC) []HistBin {
	counts := map[int]int{}
	maxBin := 0
	total := 0
	for col := int32(0); col < c.NumCols; col++ {
		l := c.ColLen(col)
		if l == 0 {
			continue
		}
		total++
		bin := 1
		for bin < l {
			bin <<= 1
		}
		counts[bin]++
		if bin > maxBin {
			maxBin = bin
		}
	}
	if total == 0 {
		return nil
	}
	var bins []HistBin
	for b := 1; b <= maxBin; b <<= 1 {
		if n := counts[b]; n > 0 {
			bins = append(bins, HistBin{UpperLen: b, Percent: 100 * float64(n) / float64(total)})
		}
	}
	return bins
}

// ColumnLengths returns the per-column non-zero counts.
func ColumnLengths(c *CSC) []int {
	lens := make([]int, c.NumCols)
	for col := int32(0); col < c.NumCols; col++ {
		lens[col] = c.ColLen(col)
	}
	return lens
}

// RowLengths returns the per-row non-zero counts.
func RowLengths(c *CSC) []int {
	lens := make([]int, c.NumRows)
	if w := c.RowIndexes().Wide(); w != nil {
		for _, r := range w {
			lens[r]++
		}
	} else {
		for _, r := range c.RowIndexes().Narrow() {
			lens[r]++
		}
	}
	return lens
}

// RowLengthsWorkers is RowLengths sharded over the worker pool: per-worker
// histograms over contiguous index blocks, then a row-sharded integer merge.
// Counts are order-insensitive integer sums, so the result is identical at
// every worker count (0 selects GOMAXPROCS, 1 the serial path).
func RowLengthsWorkers(c *CSC, workers int) []int {
	nnz := c.NNZ()
	pool := sortPool(workers, nnz, c.NumRows, 0)
	nb := pool.Blocks(nnz)
	if nb <= 1 {
		return RowLengths(c)
	}
	rows := int(c.NumRows)
	idx := c.RowIndexes()
	hist := make([]int32, nb*rows)
	pool.ForEachBlock(nnz, func(w, lo, hi int) {
		h := hist[w*rows : (w+1)*rows]
		if wide := idx.Wide(); wide != nil {
			for _, r := range wide[lo:hi] {
				h[r]++
			}
		} else {
			for _, r := range idx.Narrow()[lo:hi] {
				h[r]++
			}
		}
	})
	lens := make([]int, rows)
	pool.ForEachBlock(rows, func(_, rlo, rhi int) {
		for r := rlo; r < rhi; r++ {
			var s int
			for b := 0; b < nb; b++ {
				s += int(hist[b*rows+r])
			}
			lens[r] = s
		}
	})
	return lens
}

// PowerLawExponent estimates the exponent alpha of a discrete power-law fit
// P(len) ~ len^-alpha over the column-length distribution, using the standard
// maximum-likelihood estimator with len_min=1. It is used by tests to check
// that the synthetic datasets are genuinely heavy-tailed.
func PowerLawExponent(lens []int) float64 {
	n := 0
	sum := 0.0
	for _, l := range lens {
		if l < 1 {
			continue
		}
		n++
		sum += math.Log(float64(l) + 0.5) // +0.5: continuity correction for discrete MLE
	}
	if n == 0 || sum == 0 {
		return 0
	}
	return 1 + float64(n)/sum
}

// TopFraction returns the indices of the ceil(frac*len(lens)) largest entries
// of lens, ties broken by lower index. frac<=0 returns nil. This is the
// "top X% of columns/rows are long" selection of §3.2.
func TopFraction(lens []int, frac float64) []int32 {
	if frac <= 0 || len(lens) == 0 {
		return nil
	}
	k := int(math.Ceil(frac * float64(len(lens))))
	if k > len(lens) {
		k = len(lens)
	}
	idx := make([]int32, len(lens))
	for i := range idx {
		idx[i] = int32(i)
	}
	slices.SortFunc(idx, func(a, b int32) int {
		if c := cmp.Compare(lens[b], lens[a]); c != 0 {
			return c // longest first
		}
		return cmp.Compare(a, b)
	})
	out := append([]int32(nil), idx[:k]...)
	slices.Sort(out)
	return out
}
