package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestComputeStatsFig4(t *testing.T) {
	c := CSCFromCOO(fig4Matrix())
	s := ComputeStats(c)
	if s.NNZ != 10 {
		t.Fatalf("NNZ = %d, want 10", s.NNZ)
	}
	if want := 10.0 / 36.0; math.Abs(s.Density-want) > 1e-12 {
		t.Fatalf("density = %v, want %v", s.Density, want)
	}
	if s.MaxColLen != 3 { // column 3
		t.Fatalf("MaxColLen = %d, want 3", s.MaxColLen)
	}
	// row counts: r0={v3,v6} r1={v1,v7} r2={v9} r3={v2,v5} r4={v0,v4} r5={v8}
	if s.MaxRowLen != 2 {
		t.Fatalf("MaxRowLen = %d, want 2", s.MaxRowLen)
	}
}

func TestColumnLengthHistogramBins(t *testing.T) {
	// 4 columns: lengths 1, 2, 3, 8 -> bins 1:1, 2:1, 4:1, 8:1 each 25%.
	m := NewCOO(8, 4)
	m.Add(0, 0, 1)
	for r := int32(0); r < 2; r++ {
		m.Add(r, 1, 1)
	}
	for r := int32(0); r < 3; r++ {
		m.Add(r, 2, 1)
	}
	for r := int32(0); r < 8; r++ {
		m.Add(r, 3, 1)
	}
	bins := ColumnLengthHistogram(CSCFromCOO(m))
	want := map[int]float64{1: 25, 2: 25, 4: 25, 8: 25}
	if len(bins) != len(want) {
		t.Fatalf("bins = %+v", bins)
	}
	for _, b := range bins {
		if math.Abs(b.Percent-want[b.UpperLen]) > 1e-9 {
			t.Fatalf("bin %d percent = %v, want %v", b.UpperLen, b.Percent, want[b.UpperLen])
		}
	}
}

func TestColumnLengthHistogramEmpty(t *testing.T) {
	if bins := ColumnLengthHistogram(CSCFromCOO(NewCOO(4, 4))); bins != nil {
		t.Fatalf("empty matrix histogram = %+v, want nil", bins)
	}
}

func TestRowAndColumnLengths(t *testing.T) {
	c := CSCFromCOO(fig4Matrix())
	colLens := ColumnLengths(c)
	wantCols := []int{2, 2, 0, 3, 1, 2}
	for i, w := range wantCols {
		if colLens[i] != w {
			t.Fatalf("colLens[%d] = %d, want %d", i, colLens[i], w)
		}
	}
	rowLens := RowLengths(c)
	wantRows := []int{2, 2, 1, 2, 2, 1}
	for i, w := range wantRows {
		if rowLens[i] != w {
			t.Fatalf("rowLens[%d] = %d, want %d", i, rowLens[i], w)
		}
	}
}

func TestTopFraction(t *testing.T) {
	lens := []int{5, 1, 9, 9, 2, 0}
	got := TopFraction(lens, 0.34) // ceil(0.34*6)=3 -> indices of 9,9,5
	want := []int32{0, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("TopFraction = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TopFraction = %v, want %v", got, want)
		}
	}
	if TopFraction(lens, 0) != nil {
		t.Fatal("TopFraction(0) should be nil")
	}
	if got := TopFraction(lens, 2.0); len(got) != len(lens) {
		t.Fatalf("TopFraction(>1) = %v, want all indices", got)
	}
}

func TestPowerLawExponentRecoversKnownAlpha(t *testing.T) {
	// Sample discrete power laws with known exponents via inverse-CDF on a
	// continuous Pareto and rounding; the MLE must order them correctly and
	// land near the truth.
	sample := func(alpha float64, n int, seed int64) []int {
		rng := rand.New(rand.NewSource(seed))
		out := make([]int, n)
		for i := range out {
			u := rng.Float64()
			x := math.Pow(1-u, -1/(alpha-1)) // Pareto with xmin=1
			out[i] = int(x)
			if out[i] < 1 {
				out[i] = 1
			}
		}
		return out
	}
	steep := PowerLawExponent(sample(3.0, 20000, 1))
	flat := PowerLawExponent(sample(1.8, 20000, 2))
	if !(flat < steep) {
		t.Fatalf("estimator ordering wrong: alpha(1.8 sample)=%v, alpha(3.0 sample)=%v", flat, steep)
	}
	if math.Abs(steep-3.0) > 0.5 || math.Abs(flat-1.8) > 0.4 {
		t.Fatalf("estimates too far from truth: got %v (want ~3.0) and %v (want ~1.8)", steep, flat)
	}
}

func TestQuickHistogramSumsTo100(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomCOO(rng, 1+rng.Int31n(32), 1+rng.Int31n(32), 1+rng.Intn(256)).Coalesce()
		bins := ColumnLengthHistogram(CSCFromCOO(m))
		sum := 0.0
		for _, b := range bins {
			if b.Percent <= 0 {
				return false
			}
			sum += b.Percent
		}
		return math.Abs(sum-100) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickTopFractionReturnsLargest(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		lens := make([]int, 1+rng.Intn(64))
		for i := range lens {
			lens[i] = rng.Intn(100)
		}
		frac := rng.Float64()
		top := TopFraction(lens, frac)
		if frac > 0 && len(top) == 0 {
			return false
		}
		inTop := make(map[int32]bool, len(top))
		minTop := math.MaxInt64
		for _, v := range top {
			inTop[v] = true
			if lens[v] < minTop {
				minTop = lens[v]
			}
		}
		// No excluded element may be strictly larger than the smallest included.
		for i, l := range lens {
			if !inTop[int32(i)] && l > minTop {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
