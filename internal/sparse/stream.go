package sparse

import (
	"fmt"
	"math"
	"slices"

	"gearbox/internal/par"
)

// CSCBuilder assembles a CSC matrix directly from a pre-counted entry
// stream, without materializing an intermediate COO copy. The intended
// protocol is the two-pass streaming build mtx.ReadCSC runs:
//
//  1. a counting pass over the source tallies per-column entry counts;
//  2. NewCSCBuilder turns the counts into offsets and allocates the final
//     width-adaptive arrays — the only O(nnz) allocation of the build;
//  3. PlaceBatch scatters bounded batches of entries into their column
//     spans, in source order (callers feed batches serially);
//  4. Finish sorts each column by row, merges duplicates in source order,
//     drops exact zeros and compacts — exactly the Coalesce semantics, so
//     the result is bit-identical to CSCFromCOO over the same entries.
//
// Peak memory is the final CSC plus O(cols) cursors plus per-worker scratch
// bounded by the longest column, versus the COO path's sorted copies (~3
// entry arrays of 12 bytes each alongside the final CSC).
type CSCBuilder struct {
	c    *CSC
	cur  []int64 // per-column write cursor (absolute entry positions)
	pool *par.Pool
}

// NewCSCBuilder allocates the final arrays for a matrix whose column c will
// receive exactly colCounts[c] entries (duplicates included; they merge in
// Finish). Entry totals beyond MaxInt32 are rejected — the same clean-error
// guarantee the ingest paths give on 100M+ nnz inputs.
func NewCSCBuilder(rows, cols int32, colCounts []int64, workers int) (*CSCBuilder, error) {
	if rows < 0 || cols < 0 {
		return nil, fmt.Errorf("sparse: negative dimensions %dx%d", rows, cols)
	}
	if int64(len(colCounts)) != int64(cols) {
		return nil, fmt.Errorf("sparse: %d column counts for %d columns", len(colCounts), cols)
	}
	c := &CSC{NumRows: rows, NumCols: cols, Offsets: make([]int64, cols+1)}
	for i, n := range colCounts {
		if n < 0 {
			return nil, fmt.Errorf("sparse: negative count for column %d", i)
		}
		c.Offsets[i+1] = c.Offsets[i] + n
	}
	total := c.Offsets[cols]
	if total > math.MaxInt32 {
		return nil, fmt.Errorf("sparse: %d entries exceed the int32 entry limit", total)
	}
	c.allocIndexes(int(total))
	c.Values = make([]float32, total)
	b := &CSCBuilder{c: c, cur: make([]int64, cols), pool: par.New(workers)}
	copy(b.cur, c.Offsets[:cols])
	return b, nil
}

// PlaceBatch scatters one batch of entries into their column spans. Batches
// must arrive in source order (the order CSCFromCOO would have seen), and
// rows/cols must already be validated against the matrix dimensions; the
// per-column counts given to NewCSCBuilder bound each column's span.
func (b *CSCBuilder) PlaceBatch(entries []Entry) {
	cur, vals := b.cur, b.c.Values
	if b.c.ix16 != nil {
		ix := b.c.ix16
		for _, e := range entries {
			p := cur[e.Col]
			cur[e.Col] = p + 1
			ix[p] = uint16(e.Row)
			vals[p] = e.Val
		}
		return
	}
	ix := b.c.ix32
	for _, e := range entries {
		p := cur[e.Col]
		cur[e.Col] = p + 1
		ix[p] = e.Row
		vals[p] = e.Val
	}
}

// Finish sorts, coalesces and compacts the placed entries and returns the
// matrix. Per-column work shards over the pool: each column sorts its span
// by (row, source position) — packed uint64 keys, so the sort is a plain
// slices.Sort and stability is structural — then merges duplicate rows in
// source order and drops exact zeros, matching Coalesce bit for bit.
func (b *CSCBuilder) Finish() (*CSC, error) {
	c, cur := b.c, b.cur
	nCols := int(c.NumCols)
	for col := 0; col < nCols; col++ {
		if cur[col] != c.Offsets[col+1] {
			return nil, fmt.Errorf("sparse: column %d received %d of %d entries",
				col, cur[col]-c.Offsets[col], c.Offsets[col+1]-c.Offsets[col])
		}
	}

	pool := b.pool
	nb := pool.Blocks(nCols)
	keyScr := make([][]uint64, nb)
	valScr := make([][]float32, nb)
	// cur[col] becomes the column's kept-entry count.
	pool.ForEachBlock(nCols, func(w, clo, chi int) {
		for col := clo; col < chi; col++ {
			lo, hi := c.Offsets[col], c.Offsets[col+1]
			n := int(hi - lo)
			if n == 0 {
				cur[col] = 0
				continue
			}
			if colClean(c, lo, hi) {
				cur[col] = int64(n)
				continue
			}
			keys := growTo(keyScr[w], n)
			keyScr[w] = keys
			if c.ix16 != nil {
				for i := 0; i < n; i++ {
					keys[i] = uint64(c.ix16[lo+int64(i)])<<32 | uint64(i)
				}
			} else {
				for i := 0; i < n; i++ {
					keys[i] = uint64(uint32(c.ix32[lo+int64(i)]))<<32 | uint64(i)
				}
			}
			slices.Sort(keys)
			vbuf := growToF(valScr[w], n)
			valScr[w] = vbuf
			copy(vbuf, c.Values[lo:hi])
			out := lo
			for i := 0; i < n; {
				row := keys[i] >> 32
				v := vbuf[uint32(keys[i])]
				j := i + 1
				// Equal rows sort by source position (the low key half), so
				// duplicate values fold in source order, like Coalesce.
				for j < n && keys[j]>>32 == row {
					v += vbuf[uint32(keys[j])]
					j++
				}
				if v != 0 {
					if c.ix16 != nil {
						//gearbox:narrow-ok row round-trips through the packed sort key; it originated in this uint16 index array
						c.ix16[out] = uint16(row)
					} else {
						//gearbox:narrow-ok row round-trips through the packed sort key; it originated in this int32 index array
						c.ix32[out] = int32(row)
					}
					c.Values[out] = v
					out++
				}
				i = j
			}
			cur[col] = out - lo
		}
	})

	// Rebuild offsets and compact shrunk columns forward (dst <= src, so the
	// serial walk moves every span at most once, in place).
	run := int64(0)
	for col := 0; col < nCols; col++ {
		lo, kept := c.Offsets[col], cur[col]
		if run != lo && kept > 0 {
			if c.ix16 != nil {
				copy(c.ix16[run:run+kept], c.ix16[lo:lo+kept])
			} else {
				copy(c.ix32[run:run+kept], c.ix32[lo:lo+kept])
			}
			copy(c.Values[run:run+kept], c.Values[lo:lo+kept])
		}
		c.Offsets[col] = run
		run += kept
	}
	c.Offsets[nCols] = run
	if c.ix16 != nil {
		c.ix16 = c.ix16[:run]
	} else {
		c.ix32 = c.ix32[:run]
	}
	c.Values = c.Values[:run]
	b.c, b.cur = nil, nil
	return c, nil
}

// colClean reports whether the span is already strictly increasing by row
// with no zero values — the overwhelmingly common case for real matrix
// files, which skips the sort entirely.
func colClean(c *CSC, lo, hi int64) bool {
	if c.ix16 != nil {
		prev := int32(-1)
		for i := lo; i < hi; i++ {
			r := int32(c.ix16[i])
			if r <= prev || c.Values[i] == 0 {
				return false
			}
			prev = r
		}
		return true
	}
	prev := int32(-1)
	for i := lo; i < hi; i++ {
		r := c.ix32[i]
		if r <= prev || c.Values[i] == 0 {
			return false
		}
		prev = r
	}
	return true
}

// growTo returns s resized to n, reallocating only when capacity is short.
func growTo(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	return s[:n]
}

func growToF(s []float32, n int) []float32 {
	if cap(s) < n {
		return make([]float32, n)
	}
	return s[:n]
}
