package sparse

import (
	"math/rand"
	"testing"
)

// TestWidthSelectionBoundary pins the 16/32-bit storage decision to the
// exact row count where uint16 stops being able to hold every row index.
func TestWidthSelectionBoundary(t *testing.T) {
	cases := []struct {
		rows     int32
		wantBits int
	}{
		{1, 16},
		{narrowRowLimit, 16},     // rows 0..65535 all fit uint16
		{narrowRowLimit + 1, 32}, // row 65536 would not
	}
	for _, tc := range cases {
		m := NewCOO(tc.rows, 2)
		m.Add(0, 0, 1)
		m.Add(tc.rows-1, 1, 2)
		c := CSCFromCOO(m)
		if c.IndexBits() != tc.wantBits {
			t.Fatalf("rows=%d: IndexBits=%d, want %d", tc.rows, c.IndexBits(), tc.wantBits)
		}
		if c.Index(1) != tc.rows-1 {
			t.Fatalf("rows=%d: top row index %d, want %d", tc.rows, c.Index(1), tc.rows-1)
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("rows=%d: %v", tc.rows, err)
		}
	}
}

// TestForceWideEquivalence: widening storage must not change any observable
// content — Equal, Validate, column views, row lengths, permutations.
func TestForceWideEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	m := randomCOO(rng, 300, 200, 4000).Coalesce()
	narrow := CSCFromCOO(m)
	if narrow.IndexBits() != 16 {
		t.Fatalf("300-row matrix stored %d-bit", narrow.IndexBits())
	}
	wide := CSCFromCOO(m)
	wide.ForceWide()
	if wide.IndexBits() != 32 {
		t.Fatal("ForceWide left 16-bit storage")
	}
	if !narrow.Equal(wide) || !wide.Equal(narrow) {
		t.Fatal("widening changed the matrix")
	}
	if err := wide.Validate(); err != nil {
		t.Fatal(err)
	}
	for col := int32(0); col < narrow.NumCols; col++ {
		nr, nv := narrow.Col(col)
		wr, wv := wide.Col(col)
		if nr.Len() != wr.Len() {
			t.Fatalf("col %d: lengths diverge", col)
		}
		for i := 0; i < nr.Len(); i++ {
			if nr.At(i) != wr.At(i) || nv[i] != wv[i] {
				t.Fatalf("col %d entry %d diverges", col, i)
			}
		}
	}
	ln, lw := RowLengths(narrow), RowLengths(wide)
	for i := range ln {
		if ln[i] != lw[i] {
			t.Fatalf("row length %d diverges: %d vs %d", i, ln[i], lw[i])
		}
	}
}

// TestApplyPermutationWidthEquivalence: the relabel path has separate 16-
// and 32-bit loops; both must produce the same matrix.
func TestApplyPermutationWidthEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	n := int32(257)
	m := randomCOO(rng, n, n, 3000).Coalesce()
	narrow := CSCFromCOO(m)
	wide := CSCFromCOO(m)
	wide.ForceWide()

	perm := Identity(n)
	rng.Shuffle(int(n), func(i, j int) {
		perm.Old[i], perm.Old[j] = perm.Old[j], perm.Old[i]
	})
	for nw, old := range perm.Old {
		perm.New[old] = int32(nw)
	}
	if err := perm.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3, 0} {
		a := ApplyPermutationWorkers(narrow, perm, workers)
		b := ApplyPermutationWorkers(wide, perm, workers)
		if !a.Equal(b) {
			t.Fatalf("workers=%d: permuted matrices diverge across widths", workers)
		}
	}
}

// TestBuilderWidthMatchesCSCFromCOO: the streaming builder must pick the
// same storage width the batch path picks, on both sides of the boundary.
func TestBuilderWidthMatchesCSCFromCOO(t *testing.T) {
	for _, rows := range []int32{100, narrowRowLimit + 1} {
		counts := make([]int64, 3)
		counts[0], counts[2] = 2, 1
		b, err := NewCSCBuilder(rows, 3, counts, 1)
		if err != nil {
			t.Fatal(err)
		}
		b.PlaceBatch([]Entry{{Row: rows - 1, Col: 0, Val: 1}, {Row: 0, Col: 0, Val: 2}, {Row: 5, Col: 2, Val: 3}})
		c, err := b.Finish()
		if err != nil {
			t.Fatal(err)
		}
		m := NewCOO(rows, 3)
		m.Add(rows-1, 0, 1)
		m.Add(0, 0, 2)
		m.Add(5, 2, 3)
		want := CSCFromCOO(m)
		if c.IndexBits() != want.IndexBits() {
			t.Fatalf("rows=%d: builder chose %d-bit, batch chose %d-bit", rows, c.IndexBits(), want.IndexBits())
		}
		if !c.Equal(want) {
			t.Fatalf("rows=%d: builder result differs from batch path", rows)
		}
	}
}

// TestBuilderRejectsOverflow: entry totals past int32 must error at
// construction, never wrap.
func TestBuilderRejectsOverflow(t *testing.T) {
	counts := []int64{1 << 31, 1}
	if _, err := NewCSCBuilder(10, 2, counts, 1); err == nil {
		t.Fatal("builder accepted a > MaxInt32 entry total")
	}
}
