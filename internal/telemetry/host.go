package telemetry

// Host-side observability types. Everything flowing through Sink is
// simulated state and must be bit-identical at any worker count; the types
// here are the opposite — measurements of how the host executed the
// simulation (scheduling, overlap, occupancy), which legitimately vary run
// to run. Keeping them out of the Sink interface keeps that contract sharp.

// PipelineStats is a snapshot of the gearbox machine's step 3 compute/merge
// software pipeline, accumulated since the machine was built (see
// gearbox.Machine.PipelineStats).
type PipelineStats struct {
	// Runs counts pipelined step 3 executions (iterations where the overlap
	// engaged: more than one worker and more than one chunk); Chunks the
	// total chunks those runs dispensed.
	Runs   int64
	Chunks int64
	// ChunkSPUs is the resolved chunk width in source SPUs.
	ChunkSPUs int
	// InFlightMax is the high-water mark of computed-but-unmerged chunks —
	// 2 means the double-buffered overlap actually filled; 1 means merges
	// always finished before the next compute (compute-bound).
	InFlightMax int
}
