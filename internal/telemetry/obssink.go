package telemetry

import (
	"strconv"

	"gearbox/internal/obs"
)

// ObsSink bridges the simulated machine's spatial telemetry into a host-side
// obs.Registry, so one /metrics scrape sees both how the host served traffic
// and how much simulated work the runs performed. It folds each callback
// into a handful of pre-resolved aggregate counters — per-step busy time,
// accumulation classes, link words — rather than per-SPU/per-link series:
// scrape-grade metrics want bounded cardinality, and the full spatial
// resolution remains SpatialStats' job (Tee them to get both).
//
// Every handle is resolved at construction, so the callbacks are pure atomic
// adds: allocation-free (they run inside //gearbox:steadystate Iterate code)
// and safe to leave attached to every pooled machine of a serving process.
// Counters only accumulate; the registry is shared across runs and machines,
// so values are process-lifetime totals in the Prometheus sense.
type ObsSink struct {
	iterations  *obs.Counter
	frontierIn  *obs.Counter
	frontierOut *obs.Counter
	maxFrontier *obs.Gauge

	busyNs    [NumSteps]*obs.Counter // indexed step-1; non-compute steps stay nil
	ringWords [NumSteps]*obs.Counter
	tsvWords  [NumSteps]*obs.Counter

	localAccums  *obs.Counter
	remoteAccums *obs.Counter
	longAccums   *obs.Counter

	dispatchHighWater *obs.Gauge
}

// NewObsSink resolves the simulated-side metric families in r. Calling it
// twice on one registry returns sinks sharing the same counters (obs
// registration is get-or-create), which is exactly right for a pool of
// machines feeding one scrape endpoint.
func NewObsSink(r *obs.Registry) *ObsSink {
	s := &ObsSink{
		iterations: r.Counter("gearbox_sim_iterations_total",
			"Simulated iterations executed across all runs."),
		frontierIn: r.Counter("gearbox_sim_frontier_in_entries_total",
			"Input frontier entries consumed across all iterations."),
		frontierOut: r.Counter("gearbox_sim_frontier_out_entries_total",
			"Output frontier entries produced across all iterations."),
		maxFrontier: r.Gauge("gearbox_sim_max_frontier_entries",
			"Largest input frontier of any iteration (process high-water)."),
		dispatchHighWater: r.Gauge("gearbox_sim_dispatch_highwater_pairs",
			"Highest dispatcher-buffer occupancy (pairs) ever observed."),
	}
	accums := r.CounterVec("gearbox_sim_accums_total",
		"Step-3 accumulations by destination class (local shard, remote owner, long region).",
		"class")
	s.localAccums = accums.With("local")
	s.remoteAccums = accums.With("remote")
	s.longAccums = accums.With("long")
	busy := r.CounterVec("gearbox_sim_busy_ns_total",
		"Summed per-SPU busy time by compute step, in simulated ns.", "step")
	ring := r.CounterVec("gearbox_sim_ring_words_total",
		"Words carried by ring segments by network step.", "step")
	tsv := r.CounterVec("gearbox_sim_tsv_words_total",
		"Words carried by TSV vault buses by network step.", "step")
	for _, step := range []int{2, 3, 5, 6} { // compute steps drive StepSPUBusy
		s.busyNs[step-1] = busy.With(strconv.Itoa(step))
	}
	for _, step := range []int{1, 3, 4, 6} { // network steps drive LinkWords
		s.ringWords[step-1] = ring.With(strconv.Itoa(step))
		s.tsvWords[step-1] = tsv.With(strconv.Itoa(step))
	}
	return s
}

//gearbox:steadystate
func (s *ObsSink) BeginIteration(iter int, nowNs float64, frontierNNZ int64) {
	s.iterations.Inc()
	s.frontierIn.Add(float64(frontierNNZ))
	s.maxFrontier.Max(float64(frontierNNZ))
}

//gearbox:steadystate
func (s *ObsSink) StepSPUBusy(step int, nowNs float64, busyNs []float64) {
	var total float64
	for _, v := range busyNs {
		total += v
	}
	s.busyNs[step-1].Add(total)
}

//gearbox:steadystate
func (s *ObsSink) SPUAccums(nowNs float64, local, remote, long []int64) {
	var l, r, lg int64
	for i := range local {
		l += local[i]
		r += remote[i]
		lg += long[i]
	}
	s.localAccums.Add(float64(l))
	s.remoteAccums.Add(float64(r))
	s.longAccums.Add(float64(lg))
}

//gearbox:steadystate
func (s *ObsSink) LinkWords(step int, nowNs float64, ringSegWords, tsvVaultWords []int64) {
	var ring, tsv int64
	for _, v := range ringSegWords {
		ring += v
	}
	for _, v := range tsvVaultWords {
		tsv += v
	}
	s.ringWords[step-1].Add(float64(ring))
	s.tsvWords[step-1].Add(float64(tsv))
}

//gearbox:steadystate
func (s *ObsSink) DispatchOccupancy(step int, nowNs float64, bankPairs []int64) {
	var max int64
	for _, v := range bankPairs {
		if v > max {
			max = v
		}
	}
	s.dispatchHighWater.Max(float64(max))
}

//gearbox:steadystate
func (s *ObsSink) EndIteration(nowNs float64, frontierOut int64) {
	s.frontierOut.Add(float64(frontierOut))
}
