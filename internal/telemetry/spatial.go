package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
)

// SpatialStats is the standard Sink: it folds every callback into fixed-size
// arrays allocated once at construction, so attaching it to a steady-state
// run stays allocation-free. Per-step arrays are heatmap-shaped — outer index
// step-1, inner index the spatial coordinate — ready for direct plotting.
//
// All counters accumulate across iterations until Reset. Because the machine
// delivers bit-identical values at any worker count, two SpatialStats filled
// by the same run at different Workers settings are deeply equal.
type SpatialStats struct {
	// RunID is a host-side correlation ID stamped onto snapshots by the
	// serving layer (never written by the simulation callbacks), so a
	// telemetry document alone identifies the request that produced it.
	RunID string `json:"run_id,omitempty"`

	Shape      Shape `json:"shape"`
	Iterations int   `json:"iterations"`

	// SPUBusyNs[step-1][spu] is the summed busy time of each compute SPU in
	// the compute steps (2, 3, 5, 6); rows for steps 1 and 4 stay zero.
	SPUBusyNs [][]float64 `json:"spu_busy_ns"`

	// Per-SPU step-3 accumulation counts by destination class.
	LocalAccums  []int64 `json:"local_accums"`
	RemoteAccums []int64 `json:"remote_accums"`
	LongAccums   []int64 `json:"long_accums"`

	// RingWords[step-1][layer*BanksPerLayer+seg] and TSVWords[step-1][vault]
	// are the words each link carried during the network-touching steps
	// (1, 3, 4, 6); compute-only step rows stay zero.
	RingWords [][]int64 `json:"ring_words"`
	TSVWords  [][]int64 `json:"tsv_words"`

	// DispatchHighWater[bank] is the maximum dispatcher-buffer occupancy
	// (in pairs) ever observed at that bank, across steps and iterations.
	DispatchHighWater []int64 `json:"dispatch_high_water"`

	// Frontier totals: summed input/output sizes and the largest input
	// frontier of any iteration.
	FrontierIn  int64 `json:"frontier_in"`
	FrontierOut int64 `json:"frontier_out"`
	MaxFrontier int64 `json:"max_frontier"`
}

// NewSpatialStats allocates a zeroed SpatialStats for one machine shape.
func NewSpatialStats(sh Shape) *SpatialStats {
	s := &SpatialStats{Shape: sh}
	s.SPUBusyNs = make([][]float64, NumSteps)
	s.RingWords = make([][]int64, NumSteps)
	s.TSVWords = make([][]int64, NumSteps)
	for i := 0; i < NumSteps; i++ {
		s.SPUBusyNs[i] = make([]float64, sh.NumSPUs)
		s.RingWords[i] = make([]int64, sh.RingSegs)
		s.TSVWords[i] = make([]int64, sh.Vaults)
	}
	s.LocalAccums = make([]int64, sh.NumSPUs)
	s.RemoteAccums = make([]int64, sh.NumSPUs)
	s.LongAccums = make([]int64, sh.NumSPUs)
	s.DispatchHighWater = make([]int64, sh.Banks)
	return s
}

// Reset zeroes every counter while keeping the allocations.
func (s *SpatialStats) Reset() {
	s.Iterations = 0
	for i := 0; i < NumSteps; i++ {
		clear(s.SPUBusyNs[i])
		clear(s.RingWords[i])
		clear(s.TSVWords[i])
	}
	clear(s.LocalAccums)
	clear(s.RemoteAccums)
	clear(s.LongAccums)
	clear(s.DispatchHighWater)
	s.FrontierIn, s.FrontierOut, s.MaxFrontier = 0, 0, 0
}

// Snapshot returns a deep copy of the current counters: an independent
// SpatialStats that stays frozen while the original keeps accumulating or is
// Reset for the next run. The serving layer snapshots per run so results can
// carry telemetry while the sink itself is pooled with the machine.
func (s *SpatialStats) Snapshot() *SpatialStats {
	c := NewSpatialStats(s.Shape)
	c.Iterations = s.Iterations
	for i := 0; i < NumSteps; i++ {
		copy(c.SPUBusyNs[i], s.SPUBusyNs[i])
		copy(c.RingWords[i], s.RingWords[i])
		copy(c.TSVWords[i], s.TSVWords[i])
	}
	copy(c.LocalAccums, s.LocalAccums)
	copy(c.RemoteAccums, s.RemoteAccums)
	copy(c.LongAccums, s.LongAccums)
	copy(c.DispatchHighWater, s.DispatchHighWater)
	c.FrontierIn, c.FrontierOut, c.MaxFrontier = s.FrontierIn, s.FrontierOut, s.MaxFrontier
	return c
}

//gearbox:steadystate
func (s *SpatialStats) BeginIteration(iter int, nowNs float64, frontierNNZ int64) {
	s.Iterations++
	s.FrontierIn += frontierNNZ
	if frontierNNZ > s.MaxFrontier {
		s.MaxFrontier = frontierNNZ
	}
}

//gearbox:steadystate
func (s *SpatialStats) StepSPUBusy(step int, nowNs float64, busyNs []float64) {
	row := s.SPUBusyNs[step-1]
	for k, v := range busyNs {
		row[k] += v
	}
}

//gearbox:steadystate
func (s *SpatialStats) SPUAccums(nowNs float64, local, remote, long []int64) {
	for k := range local {
		s.LocalAccums[k] += local[k]
		s.RemoteAccums[k] += remote[k]
		s.LongAccums[k] += long[k]
	}
}

//gearbox:steadystate
func (s *SpatialStats) LinkWords(step int, nowNs float64, ringSegWords, tsvVaultWords []int64) {
	ringRow := s.RingWords[step-1]
	for i, v := range ringSegWords {
		ringRow[i] += v
	}
	tsvRow := s.TSVWords[step-1]
	for i, v := range tsvVaultWords {
		tsvRow[i] += v
	}
}

//gearbox:steadystate
func (s *SpatialStats) DispatchOccupancy(step int, nowNs float64, bankPairs []int64) {
	for b, v := range bankPairs {
		if v > s.DispatchHighWater[b] {
			s.DispatchHighWater[b] = v
		}
	}
}

//gearbox:steadystate
func (s *SpatialStats) EndIteration(nowNs float64, frontierOut int64) {
	s.FrontierOut += frontierOut
}

// WriteJSON emits the snapshot as one indented JSON object.
func (s *SpatialStats) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteCSV emits the snapshot as long-form rows, metric,step,index,value —
// one row per non-zero counter, plus the scalar frontier totals with step
// and index 0. The shape suits spreadsheet pivots and plotting tools that
// prefer tidy data over nested arrays.
func (s *SpatialStats) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "metric,step,index,value"); err != nil {
		return err
	}
	for st := 0; st < NumSteps; st++ {
		for k, v := range s.SPUBusyNs[st] {
			if v == 0 {
				continue
			}
			if _, err := fmt.Fprintf(w, "spu_busy_ns,%d,%d,%g\n", st+1, k, v); err != nil {
				return err
			}
		}
	}
	perSPU := []struct {
		name string
		vals []int64
	}{
		{"local_accums", s.LocalAccums},
		{"remote_accums", s.RemoteAccums},
		{"long_accums", s.LongAccums},
	}
	for _, m := range perSPU {
		for k, v := range m.vals {
			if v == 0 {
				continue
			}
			if _, err := fmt.Fprintf(w, "%s,3,%d,%d\n", m.name, k, v); err != nil {
				return err
			}
		}
	}
	for st := 0; st < NumSteps; st++ {
		for i, v := range s.RingWords[st] {
			if v == 0 {
				continue
			}
			if _, err := fmt.Fprintf(w, "ring_words,%d,%d,%d\n", st+1, i, v); err != nil {
				return err
			}
		}
		for i, v := range s.TSVWords[st] {
			if v == 0 {
				continue
			}
			if _, err := fmt.Fprintf(w, "tsv_words,%d,%d,%d\n", st+1, i, v); err != nil {
				return err
			}
		}
	}
	for b, v := range s.DispatchHighWater {
		if v == 0 {
			continue
		}
		if _, err := fmt.Fprintf(w, "dispatch_high_water,0,%d,%d\n", b, v); err != nil {
			return err
		}
	}
	scalars := []struct {
		name string
		v    int64
	}{
		{"iterations", int64(s.Iterations)},
		{"frontier_in", s.FrontierIn},
		{"frontier_out", s.FrontierOut},
		{"max_frontier", s.MaxFrontier},
	}
	for _, m := range scalars {
		if _, err := fmt.Fprintf(w, "%s,0,0,%d\n", m.name, m.v); err != nil {
			return err
		}
	}
	return nil
}
