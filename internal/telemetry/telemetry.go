// Package telemetry is the simulator's spatial observability layer. The
// global Events/StepStats aggregates answer "how much work happened"; this
// package answers "where it landed": per-SPU busy and accumulation counters,
// per-ring-segment and per-TSV word counts, and dispatcher-buffer occupancy
// high-water marks, the breakdowns that make load imbalance and hot links
// visible (the quantities Figs. 14-16 of the paper reason about).
//
// The layer is a Sink interface the Machine drives from inside Iterate.
// Three contracts bind every implementation and every call site:
//
//   - Zero overhead when disabled: a nil sink costs the machine one nil
//     check per step; no counters are maintained speculatively.
//   - Alloc-free when enabled: the machine calls sinks from
//     //gearbox:steadystate code, so a sink used in steady state must not
//     allocate per callback. SpatialStats pre-sizes every array at
//     construction from a Shape and only accumulates in place.
//   - Bit-identical at any worker count: every value handed to a sink is
//     produced by the machine's deterministic parallel phases (per-SPU
//     slots, ordered folds), so a sink observes exactly the same sequence
//     of calls and values at Workers=1 and Workers=N.
//
// Slices passed to sink callbacks are borrowed: they are owned by the
// machine, valid only for the duration of the call, and reused afterwards.
// Sinks must copy or fold, never retain.
package telemetry

import "gearbox/internal/mem"

// NumSteps is the §5 step count every per-step array spans; steps are
// numbered 1-6 in callbacks and stored at [step-1].
const NumSteps = 6

// Shape fixes the dimensions of the spatial counter arrays for one machine.
type Shape struct {
	NumSPUs  int `json:"num_spus"`  // compute SPUs (partition plan order)
	Banks    int `json:"banks"`     // Layers*BanksPerLayer flat bank ids
	RingSegs int `json:"ring_segs"` // per-layer ring segments, flattened [layer*BanksPerLayer+seg]
	Vaults   int `json:"vaults"`    // TSV buses (one per vault)
}

// ShapeOf derives the Shape for a stack geometry and its compute-SPU count.
func ShapeOf(g mem.Geometry, numSPUs int) Shape {
	return Shape{
		NumSPUs:  numSPUs,
		Banks:    g.Layers * g.BanksPerLayer,
		RingSegs: g.Layers * g.BanksPerLayer,
		Vaults:   g.Vaults,
	}
}

// Sink receives the machine's spatial counters. Step numbers are the §5
// steps (1-6); nowNs is the simulated clock at the time of the call. All
// callbacks run synchronously on the goroutine driving Iterate, strictly
// ordered, after the step's parallel phase has joined — implementations
// need no locking.
type Sink interface {
	// BeginIteration opens iteration iter (0-based) whose input frontier
	// holds frontierNNZ entries.
	BeginIteration(iter int, nowNs float64, frontierNNZ int64)
	// StepSPUBusy reports the per-SPU busy time of one compute step
	// (2, 3, 5 or 6). busyNs is borrowed and indexed by compute-SPU.
	StepSPUBusy(step int, nowNs float64, busyNs []float64)
	// SPUAccums reports step 3's per-SPU accumulation counts: local (own
	// shard), remote (dispatched toward an owner), long (long-region).
	// Slices are borrowed and indexed by compute-SPU.
	SPUAccums(nowNs float64, local, remote, long []int64)
	// LinkWords reports the words each interconnect link carried during a
	// network-touching step (1, 3, 4 or 6): ringSegWords is flattened
	// [layer*BanksPerLayer+seg], tsvVaultWords is indexed by vault. Both
	// are borrowed.
	LinkWords(step int, nowNs float64, ringSegWords, tsvVaultWords []int64)
	// DispatchOccupancy reports per-bank dispatcher-buffer occupancy in
	// (index,value) pairs: the receive reservation filled during step 3,
	// the forwarding buffer during step 4. bankPairs is borrowed and
	// indexed by flat bank id.
	DispatchOccupancy(step int, nowNs float64, bankPairs []int64)
	// EndIteration closes the iteration with its output frontier size.
	EndIteration(nowNs float64, frontierOut int64)
}

// tee fans every callback out to several sinks in fixed order.
type tee struct {
	sinks []Sink
}

// Tee combines sinks into one; nil entries are dropped. With zero or one
// live sink it returns nil or the sink itself, so callers can Tee
// unconditionally and still keep the machine's nil-sink fast path.
func Tee(sinks ...Sink) Sink {
	live := make([]Sink, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			live = append(live, s)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return &tee{sinks: live}
}

//gearbox:steadystate
func (t *tee) BeginIteration(iter int, nowNs float64, frontierNNZ int64) {
	for _, s := range t.sinks {
		s.BeginIteration(iter, nowNs, frontierNNZ)
	}
}

//gearbox:steadystate
func (t *tee) StepSPUBusy(step int, nowNs float64, busyNs []float64) {
	for _, s := range t.sinks {
		s.StepSPUBusy(step, nowNs, busyNs)
	}
}

//gearbox:steadystate
func (t *tee) SPUAccums(nowNs float64, local, remote, long []int64) {
	for _, s := range t.sinks {
		s.SPUAccums(nowNs, local, remote, long)
	}
}

//gearbox:steadystate
func (t *tee) LinkWords(step int, nowNs float64, ringSegWords, tsvVaultWords []int64) {
	for _, s := range t.sinks {
		s.LinkWords(step, nowNs, ringSegWords, tsvVaultWords)
	}
}

//gearbox:steadystate
func (t *tee) DispatchOccupancy(step int, nowNs float64, bankPairs []int64) {
	for _, s := range t.sinks {
		s.DispatchOccupancy(step, nowNs, bankPairs)
	}
}

//gearbox:steadystate
func (t *tee) EndIteration(nowNs float64, frontierOut int64) {
	for _, s := range t.sinks {
		s.EndIteration(nowNs, frontierOut)
	}
}
