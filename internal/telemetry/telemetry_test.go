package telemetry

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"gearbox/internal/mem"
)

func testShape() Shape {
	return Shape{NumSPUs: 4, Banks: 6, RingSegs: 6, Vaults: 2}
}

// feed drives a fixed two-iteration callback sequence into a sink, the same
// order the machine produces: begin, step callbacks, end.
func feed(s Sink) {
	s.BeginIteration(0, 0, 10)
	s.StepSPUBusy(2, 100, []float64{1, 2, 3, 4})
	s.SPUAccums(200, []int64{5, 0, 1, 2}, []int64{1, 1, 0, 0}, []int64{0, 0, 2, 0})
	s.LinkWords(3, 200, []int64{7, 0, 0, 1, 0, 0}, []int64{3, 5})
	s.DispatchOccupancy(3, 200, []int64{2, 0, 4, 0, 0, 1})
	s.EndIteration(300, 6)
	s.BeginIteration(1, 300, 6)
	s.StepSPUBusy(2, 400, []float64{4, 3, 2, 1})
	s.DispatchOccupancy(4, 500, []int64{0, 3, 1, 0, 0, 0})
	s.EndIteration(600, 0)
}

func TestShapeOf(t *testing.T) {
	g := mem.Geometry{Layers: 4, BanksPerLayer: 16, Vaults: 8}
	sh := ShapeOf(g, 48)
	want := Shape{NumSPUs: 48, Banks: 64, RingSegs: 64, Vaults: 8}
	if sh != want {
		t.Fatalf("ShapeOf = %+v, want %+v", sh, want)
	}
}

func TestSpatialStatsAccumulates(t *testing.T) {
	sp := NewSpatialStats(testShape())
	feed(sp)

	if sp.Iterations != 2 {
		t.Errorf("Iterations = %d, want 2", sp.Iterations)
	}
	if sp.FrontierIn != 16 || sp.FrontierOut != 6 || sp.MaxFrontier != 10 {
		t.Errorf("frontier totals in/out/max = %d/%d/%d, want 16/6/10",
			sp.FrontierIn, sp.FrontierOut, sp.MaxFrontier)
	}
	if want := []float64{5, 5, 5, 5}; !reflect.DeepEqual(sp.SPUBusyNs[1], want) {
		t.Errorf("step 2 busy = %v, want %v", sp.SPUBusyNs[1], want)
	}
	if want := []int64{5, 0, 1, 2}; !reflect.DeepEqual(sp.LocalAccums, want) {
		t.Errorf("local accums = %v, want %v", sp.LocalAccums, want)
	}
	if sp.RingWords[2][0] != 7 || sp.TSVWords[2][1] != 5 {
		t.Errorf("link words not accumulated: ring=%v tsv=%v", sp.RingWords[2], sp.TSVWords[2])
	}
	// High-water is a max across steps and iterations, not a sum.
	if want := []int64{2, 3, 4, 0, 0, 1}; !reflect.DeepEqual(sp.DispatchHighWater, want) {
		t.Errorf("dispatch high-water = %v, want %v", sp.DispatchHighWater, want)
	}
}

func TestSpatialStatsSnapshotIsIndependent(t *testing.T) {
	sp := NewSpatialStats(testShape())
	feed(sp)
	snap := sp.Snapshot()
	if !reflect.DeepEqual(snap, sp) {
		t.Fatalf("snapshot differs from source:\n%+v\nvs\n%+v", snap, sp)
	}
	// The copy must be deep: resetting the source leaves the snapshot frozen.
	sp.Reset()
	if snap.Iterations != 2 || snap.FrontierIn != 16 {
		t.Fatalf("snapshot mutated by source Reset: %+v", snap)
	}
	if reflect.DeepEqual(snap, sp) {
		t.Fatal("snapshot aliases the source arrays")
	}
}

func TestSpatialStatsResetKeepsShape(t *testing.T) {
	sp := NewSpatialStats(testShape())
	feed(sp)
	sp.Reset()
	if !reflect.DeepEqual(sp, NewSpatialStats(testShape())) {
		t.Fatalf("Reset did not restore the zero state: %+v", sp)
	}
}

func TestSpatialStatsCallbacksDoNotAllocate(t *testing.T) {
	sp := NewSpatialStats(testShape())
	// Hoist the borrowed slices so the measurement sees only the callbacks,
	// exactly like the machine's reused scratch arrays.
	busy := []float64{1, 2, 3, 4}
	local, remote, long := []int64{5, 0, 1, 2}, []int64{1, 1, 0, 0}, []int64{0, 0, 2, 0}
	ring, tsv := []int64{7, 0, 0, 1, 0, 0}, []int64{3, 5}
	pairs := []int64{2, 0, 4, 0, 0, 1}
	cycle := func() {
		sp.BeginIteration(0, 0, 10)
		sp.StepSPUBusy(2, 100, busy)
		sp.SPUAccums(200, local, remote, long)
		sp.LinkWords(3, 200, ring, tsv)
		sp.DispatchOccupancy(3, 200, pairs)
		sp.EndIteration(300, 6)
	}
	cycle()
	if avg := testing.AllocsPerRun(20, cycle); avg > 0 {
		t.Fatalf("SpatialStats callbacks allocate: %.1f allocs/op, want 0", avg)
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	sp := NewSpatialStats(testShape())
	feed(sp)
	var buf bytes.Buffer
	if err := sp.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got := &SpatialStats{}
	if err := json.Unmarshal(buf.Bytes(), got); err != nil {
		t.Fatalf("snapshot does not parse: %v", err)
	}
	if !reflect.DeepEqual(sp, got) {
		t.Fatalf("JSON round trip diverges:\nwrote: %+v\nread:  %+v", sp, got)
	}
}

func TestWriteCSVLongForm(t *testing.T) {
	sp := NewSpatialStats(testShape())
	feed(sp)
	var buf bytes.Buffer
	if err := sp.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "metric,step,index,value" {
		t.Fatalf("missing header, got %q", lines[0])
	}
	want := map[string]bool{
		"spu_busy_ns,2,0,5":         false,
		"local_accums,3,0,5":        false,
		"ring_words,3,0,7":          false,
		"tsv_words,3,1,5":           false,
		"dispatch_high_water,0,2,4": false,
		"iterations,0,0,2":          false,
		"frontier_in,0,0,16":        false,
	}
	for _, ln := range lines[1:] {
		if strings.Count(ln, ",") != 3 {
			t.Errorf("row %q is not metric,step,index,value", ln)
		}
		if strings.HasSuffix(ln, ",0") && !strings.HasPrefix(ln, "frontier_out") {
			t.Errorf("zero counter row %q should have been skipped", ln)
		}
		if _, ok := want[ln]; ok {
			want[ln] = true
		}
	}
	for row, seen := range want {
		if !seen {
			t.Errorf("expected CSV row %q missing", row)
		}
	}
}

// recordingSink logs callback names so Tee's fan-out order is checkable.
type recordingSink struct {
	log *[]string
	id  string
}

func (r recordingSink) BeginIteration(iter int, nowNs float64, frontierNNZ int64) {
	*r.log = append(*r.log, r.id+":begin")
}
func (r recordingSink) StepSPUBusy(step int, nowNs float64, busyNs []float64) {
	*r.log = append(*r.log, r.id+":busy")
}
func (r recordingSink) SPUAccums(nowNs float64, local, remote, long []int64) {
	*r.log = append(*r.log, r.id+":accums")
}
func (r recordingSink) LinkWords(step int, nowNs float64, ringSegWords, tsvVaultWords []int64) {
	*r.log = append(*r.log, r.id+":links")
}
func (r recordingSink) DispatchOccupancy(step int, nowNs float64, bankPairs []int64) {
	*r.log = append(*r.log, r.id+":occ")
}
func (r recordingSink) EndIteration(nowNs float64, frontierOut int64) {
	*r.log = append(*r.log, r.id+":end")
}

func TestTee(t *testing.T) {
	if Tee() != nil || Tee(nil, nil) != nil {
		t.Error("Tee of no live sinks must be nil so the machine keeps its fast path")
	}
	var log []string
	a := recordingSink{log: &log, id: "a"}
	if got := Tee(nil, a); got != Sink(a) {
		t.Errorf("Tee with one live sink must return it unwrapped, got %T", got)
	}
	b := recordingSink{log: &log, id: "b"}
	tee := Tee(a, nil, b)
	tee.BeginIteration(0, 0, 1)
	tee.StepSPUBusy(2, 0, nil)
	tee.SPUAccums(0, nil, nil, nil)
	tee.LinkWords(3, 0, nil, nil)
	tee.DispatchOccupancy(3, 0, nil)
	tee.EndIteration(0, 0)
	want := []string{
		"a:begin", "b:begin", "a:busy", "b:busy", "a:accums", "b:accums",
		"a:links", "b:links", "a:occ", "b:occ", "a:end", "b:end",
	}
	if !reflect.DeepEqual(log, want) {
		t.Fatalf("tee fan-out order = %v, want %v", log, want)
	}
}

// fakeRecorder captures Counter samples for TraceSink tests.
type fakeRecorder struct {
	tracks []string
	at     []float64
	values []float64
}

func (f *fakeRecorder) Counter(track string, atNs, value float64) {
	f.tracks = append(f.tracks, track)
	f.at = append(f.at, atNs)
	f.values = append(f.values, value)
}

func TestTraceSinkCounterTracks(t *testing.T) {
	rec := &fakeRecorder{}
	s := NewTraceSink(rec)
	feed(s)
	want := []string{
		"frontier-size", "dispatch-buffer-occupancy-pairs", "frontier-size",
		"frontier-size", "dispatch-buffer-occupancy-pairs", "frontier-size",
	}
	if !reflect.DeepEqual(rec.tracks, want) {
		t.Fatalf("counter tracks = %v, want %v", rec.tracks, want)
	}
	wantVals := []float64{10, 4, 6, 6, 3, 0}
	if !reflect.DeepEqual(rec.values, wantVals) {
		t.Fatalf("counter values = %v, want %v", rec.values, wantVals)
	}
	for i := 1; i < len(rec.at); i++ {
		if rec.at[i] < rec.at[i-1] {
			t.Fatalf("counter timestamps regress: %v", rec.at)
		}
	}
}
