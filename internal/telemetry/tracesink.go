package telemetry

// CounterRecorder is the slice of a trace recorder this package needs:
// something that can append a Perfetto counter sample to a named track.
// internal/trace.Recorder satisfies it; keeping the dependency as an
// interface here leaves trace a leaf package.
type CounterRecorder interface {
	Counter(track string, atNs, value float64)
}

// TraceSink bridges the telemetry stream onto Perfetto counter tracks:
// frontier size at iteration boundaries and the per-step maximum
// dispatcher-buffer occupancy over simulated time. It is intentionally
// NOT steady-state safe — each sample appends an event to the recorder —
// so attach it for visualization runs, not allocation-audited ones.
type TraceSink struct {
	rec CounterRecorder
}

// NewTraceSink wraps a recorder (typically *trace.Recorder).
func NewTraceSink(rec CounterRecorder) *TraceSink {
	return &TraceSink{rec: rec}
}

func (t *TraceSink) BeginIteration(iter int, nowNs float64, frontierNNZ int64) {
	t.rec.Counter("frontier-size", nowNs, float64(frontierNNZ))
}

func (t *TraceSink) StepSPUBusy(step int, nowNs float64, busyNs []float64) {}

func (t *TraceSink) SPUAccums(nowNs float64, local, remote, long []int64) {}

func (t *TraceSink) LinkWords(step int, nowNs float64, ringSegWords, tsvVaultWords []int64) {}

func (t *TraceSink) DispatchOccupancy(step int, nowNs float64, bankPairs []int64) {
	var max int64
	for _, v := range bankPairs {
		if v > max {
			max = v
		}
	}
	t.rec.Counter("dispatch-buffer-occupancy-pairs", nowNs, float64(max))
}

func (t *TraceSink) EndIteration(nowNs float64, frontierOut int64) {
	t.rec.Counter("frontier-size", nowNs, float64(frontierOut))
}
