// Package trace records the machine's phase timeline and exports it in the
// Chrome trace-event format (chrome://tracing, Perfetto). Hook a Recorder
// into a Machine with SetTrace and every §5 step becomes a complete event on
// the simulated clock.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// Event is one Chrome trace "complete" event; timestamps are microseconds.
type Event struct {
	Name  string  `json:"name"`
	Phase string  `json:"ph"`
	TsUs  float64 `json:"ts"`
	DurUs float64 `json:"dur"`
	PID   int     `json:"pid"`
	TID   int     `json:"tid"`
}

// Recorder accumulates phase completions.
type Recorder struct {
	events []Event
	lastNs float64
}

// New returns an empty recorder.
func New() *Recorder { return &Recorder{} }

// Hook returns the callback to pass to Machine.SetTrace: each completion at
// time atNs closes a phase that started at the previous completion.
func (r *Recorder) Hook() func(name string, atNs float64) {
	return func(name string, atNs float64) {
		r.events = append(r.events, Event{
			Name:  name,
			Phase: "X",
			TsUs:  r.lastNs / 1e3,
			DurUs: (atNs - r.lastNs) / 1e3,
		})
		r.lastNs = atNs
	}
}

// Len reports recorded events.
func (r *Recorder) Len() int { return len(r.events) }

// Events returns a copy of the recorded events.
func (r *Recorder) Events() []Event { return append([]Event(nil), r.events...) }

// WriteJSON emits the chrome://tracing JSON document.
func (r *Recorder) WriteJSON(w io.Writer) error {
	doc := struct {
		TraceEvents []Event `json:"traceEvents"`
	}{TraceEvents: r.events}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// Summary renders a human-readable per-phase total.
func (r *Recorder) Summary(w io.Writer) error {
	totals := map[string]float64{}
	order := []string{}
	for _, e := range r.events {
		if _, ok := totals[e.Name]; !ok {
			order = append(order, e.Name)
		}
		totals[e.Name] += e.DurUs
	}
	for _, name := range order {
		if _, err := fmt.Fprintf(w, "%-32s %10.2f us\n", name, totals[name]); err != nil {
			return err
		}
	}
	return nil
}
