// Package trace records the machine's phase timeline and exports it in the
// Chrome trace-event format (chrome://tracing, Perfetto). Hook a Recorder
// into a Machine with SetTrace and every §5 step becomes a complete event on
// the simulated clock; Counter adds Perfetto counter-track samples (buffer
// occupancy, frontier sizes) the telemetry layer feeds over the same clock.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// pid is the single simulated-machine "process" all events belong to.
// Perfetto hides pid-0 rows behind a catch-all lane, so the machine gets a
// real id and a process_name metadata record.
const pid = 1

// Event is one Chrome trace event; timestamps are microseconds. Phases used
// here: "X" complete events (the step timeline), "C" counter samples, and
// "M" metadata (process/thread names).
type Event struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TsUs  float64        `json:"ts"`
	DurUs float64        `json:"dur"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

// Recorder accumulates phase completions and counter samples.
type Recorder struct {
	events []Event
	lastNs float64
	tids   map[string]int // stable lane per phase name, in first-seen order
}

// New returns an empty recorder.
func New() *Recorder { return &Recorder{} }

// tidFor returns the stable thread id for a phase name, assigning the next
// id — and emitting the Perfetto "M" metadata that names the lane — the
// first time a name appears. The machine announces its process name along
// with the first lane.
func (r *Recorder) tidFor(name string) int {
	if tid, ok := r.tids[name]; ok {
		return tid
	}
	if r.tids == nil {
		r.tids = make(map[string]int)
		r.events = append(r.events, Event{
			Name: "process_name", Phase: "M", PID: pid,
			Args: map[string]any{"name": "gearbox-machine"},
		})
	}
	tid := len(r.tids) + 1
	r.tids[name] = tid
	r.events = append(r.events, Event{
		Name: "thread_name", Phase: "M", PID: pid, TID: tid,
		Args: map[string]any{"name": name},
	})
	return tid
}

// Hook returns the callback to pass to Machine.SetTrace: each completion at
// time atNs closes a phase that started at the previous completion. Every
// distinct phase name gets its own stable TID (plus thread-name metadata),
// so Perfetto renders one labeled lane per §5 step instead of a single
// merged row.
func (r *Recorder) Hook() func(name string, atNs float64) {
	return func(name string, atNs float64) {
		tid := r.tidFor(name)
		r.events = append(r.events, Event{
			Name:  name,
			Phase: "X",
			TsUs:  r.lastNs / 1e3,
			DurUs: (atNs - r.lastNs) / 1e3,
			PID:   pid,
			TID:   tid,
		})
		r.lastNs = atNs
	}
}

// Counter appends one sample to the named Perfetto counter track at simulated
// time atNs. Counter tracks are per-process (no TID); the track is named by
// the event name and carries its sample in args. Recorder satisfies the
// telemetry.CounterRecorder bridge.
func (r *Recorder) Counter(track string, atNs, value float64) {
	r.events = append(r.events, Event{
		Name:  track,
		Phase: "C",
		TsUs:  atNs / 1e3,
		PID:   pid,
		Args:  map[string]any{"value": value},
	})
}

// Label attaches a key=value process label to the trace ("M" process_labels
// metadata; Perfetto shows labels next to the process name). The serving
// layer stamps each run's trace with its correlation ID this way, so a
// trace file alone identifies the request that produced it.
func (r *Recorder) Label(key, value string) {
	r.events = append(r.events, Event{
		Name: "process_labels", Phase: "M", PID: pid,
		Args: map[string]any{"labels": key + "=" + value},
	})
}

// Len reports recorded events.
func (r *Recorder) Len() int { return len(r.events) }

// Events returns a copy of the recorded events.
func (r *Recorder) Events() []Event { return append([]Event(nil), r.events...) }

// WriteJSON emits the chrome://tracing JSON document.
func (r *Recorder) WriteJSON(w io.Writer) error {
	doc := struct {
		TraceEvents []Event `json:"traceEvents"`
	}{TraceEvents: r.events}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// Summary renders a human-readable per-phase total over the "X" timeline
// events, in first-seen order (metadata and counter samples carry no
// duration and are skipped).
func (r *Recorder) Summary(w io.Writer) error {
	totals := map[string]float64{}
	order := []string{}
	for _, e := range r.events {
		if e.Phase != "X" {
			continue
		}
		if _, ok := totals[e.Name]; !ok {
			order = append(order, e.Name)
		}
		totals[e.Name] += e.DurUs
	}
	for _, name := range order {
		if _, err := fmt.Fprintf(w, "%-32s %10.2f us\n", name, totals[name]); err != nil {
			return err
		}
	}
	return nil
}
