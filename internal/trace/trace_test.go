package trace

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden fixtures")

// goldenRecorder replays a fixed timeline — two iterations of three phases
// with counter samples between them — so its serialization is stable.
func goldenRecorder() *Recorder {
	r := New()
	hook := r.Hook()
	r.Counter("frontier-size", 0, 4)
	hook("step1", 100)
	hook("step2", 250)
	r.Counter("dispatch-buffer-occupancy-pairs", 250, 12)
	hook("step3", 400)
	hook("step1", 450)
	hook("step2", 600)
	r.Counter("dispatch-buffer-occupancy-pairs", 600, 7)
	hook("step3", 900)
	r.Counter("frontier-size", 900, 9)
	return r
}

func TestRecorderBuildsCompleteEvents(t *testing.T) {
	r := New()
	hook := r.Hook()
	hook("step1", 100)
	hook("step2", 250)
	hook("step3", 250) // zero-duration phase
	var xs []Event
	for _, e := range r.Events() {
		if e.Phase == "X" {
			xs = append(xs, e)
		}
	}
	if len(xs) != 3 {
		t.Fatalf("complete events = %d", len(xs))
	}
	if xs[0].Name != "step1" || xs[0].TsUs != 0 || xs[0].DurUs != 0.1 {
		t.Fatalf("event 0 = %+v", xs[0])
	}
	if xs[1].TsUs != 0.1 || xs[1].DurUs != 0.15 {
		t.Fatalf("event 1 = %+v", xs[1])
	}
	if xs[2].DurUs != 0 {
		t.Fatalf("event 2 = %+v", xs[2])
	}
}

func TestStableTIDsAndThreadMetadata(t *testing.T) {
	r := New()
	hook := r.Hook()
	hook("step1", 100)
	hook("step2", 200)
	hook("step1", 300) // repeat: must reuse step1's lane

	tidOf := map[string]int{}
	named := map[int]string{}
	for _, e := range r.Events() {
		switch e.Phase {
		case "X":
			if e.PID == 0 {
				t.Fatalf("complete event %q has pid 0; Perfetto merges it into the catch-all lane", e.Name)
			}
			if e.TID == 0 {
				t.Fatalf("complete event %q has tid 0", e.Name)
			}
			if prev, ok := tidOf[e.Name]; ok && prev != e.TID {
				t.Fatalf("phase %q changed lanes: tid %d then %d", e.Name, prev, e.TID)
			}
			tidOf[e.Name] = e.TID
		case "M":
			if e.Name == "thread_name" {
				named[e.TID] = e.Args["name"].(string)
			}
		}
	}
	if tidOf["step1"] == tidOf["step2"] {
		t.Fatal("distinct phases share a tid")
	}
	for name, tid := range tidOf {
		if named[tid] != name {
			t.Fatalf("tid %d metadata names %q, events carry %q", tid, named[tid], name)
		}
	}
	if r.Events()[0].Name != "process_name" {
		t.Fatalf("first event %+v; want the process_name metadata record", r.Events()[0])
	}
}

func TestCounterEvents(t *testing.T) {
	r := New()
	r.Counter("frontier-size", 2000, 42)
	ev := r.Events()
	if len(ev) != 1 {
		t.Fatalf("events = %d", len(ev))
	}
	c := ev[0]
	if c.Phase != "C" || c.Name != "frontier-size" || c.TsUs != 2 || c.PID == 0 {
		t.Fatalf("counter event = %+v", c)
	}
	if v, ok := c.Args["value"].(float64); !ok || v != 42 {
		t.Fatalf("counter args = %+v", c.Args)
	}
}

// TestWriteJSONRoundTrip pins that WriteJSON's output decodes back to
// exactly what Events reports — including metadata args and counter samples.
func TestWriteJSONRoundTrip(t *testing.T) {
	r := goldenRecorder()
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []Event `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(doc.TraceEvents, r.Events()) {
		t.Fatalf("round trip diverged:\ndecoded: %+v\nrecorded: %+v", doc.TraceEvents, r.Events())
	}
}

// TestSummaryOrderingStability pins the first-seen phase order: repeated
// renders must be byte-identical, and only "X" events contribute.
func TestSummaryOrderingStability(t *testing.T) {
	r := goldenRecorder()
	var first bytes.Buffer
	if err := r.Summary(&first); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		var again bytes.Buffer
		if err := r.Summary(&again); err != nil {
			t.Fatal(err)
		}
		if again.String() != first.String() {
			t.Fatalf("summary order unstable:\n%s\nvs\n%s", first.String(), again.String())
		}
	}
	out := first.String()
	i1, i2, i3 := strings.Index(out, "step1"), strings.Index(out, "step2"), strings.Index(out, "step3")
	if i1 < 0 || i2 < 0 || i3 < 0 || !(i1 < i2 && i2 < i3) {
		t.Fatalf("summary order not first-seen:\n%s", out)
	}
	if strings.Contains(out, "frontier-size") || strings.Contains(out, "process_name") {
		t.Fatalf("summary must aggregate only the X timeline:\n%s", out)
	}
}

// TestGoldenPerfettoFixture locks the serialized trace document against
// testdata/golden_trace.json — a Perfetto-loadable fixture with complete,
// counter and metadata events. Regenerate with -update after an intentional
// format change and re-check it loads in ui.perfetto.dev.
func TestGoldenPerfettoFixture(t *testing.T) {
	r := goldenRecorder()
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "golden_trace.json")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with: go test ./internal/trace -run Golden -update)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("trace format drifted from the golden fixture:\ngot:  %s\nwant: %s", buf.Bytes(), want)
	}
	// The fixture must contain every phase kind Perfetto needs.
	for _, ph := range []string{`"ph":"X"`, `"ph":"C"`, `"ph":"M"`} {
		if !strings.Contains(buf.String(), ph) {
			t.Fatalf("fixture lacks %s events", ph)
		}
	}
}

func TestSummaryAggregatesPerPhase(t *testing.T) {
	r := New()
	hook := r.Hook()
	hook("stepA", 100)
	hook("stepB", 300)
	hook("stepA", 400)
	var buf bytes.Buffer
	if err := r.Summary(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "stepA") || !strings.Contains(out, "stepB") {
		t.Fatalf("summary missing phases:\n%s", out)
	}
	if strings.Count(out, "stepA") != 1 {
		t.Fatal("summary must aggregate repeated phases")
	}
}

func TestEventsReturnsCopy(t *testing.T) {
	r := New()
	r.Hook()("x", 10)
	ev := r.Events()
	ev[0].Name = "mutated"
	found := false
	for _, e := range r.Events() {
		if e.Name == "x" {
			found = true
		}
	}
	if !found {
		t.Fatal("Events exposed internal storage")
	}
}
