package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRecorderBuildsCompleteEvents(t *testing.T) {
	r := New()
	hook := r.Hook()
	hook("step1", 100)
	hook("step2", 250)
	hook("step3", 250) // zero-duration phase
	if r.Len() != 3 {
		t.Fatalf("events = %d", r.Len())
	}
	ev := r.Events()
	if ev[0].Name != "step1" || ev[0].TsUs != 0 || ev[0].DurUs != 0.1 {
		t.Fatalf("event 0 = %+v", ev[0])
	}
	if ev[1].TsUs != 0.1 || ev[1].DurUs != 0.15 {
		t.Fatalf("event 1 = %+v", ev[1])
	}
	if ev[2].DurUs != 0 {
		t.Fatalf("event 2 = %+v", ev[2])
	}
}

func TestWriteJSONIsChromeFormat(t *testing.T) {
	r := New()
	hook := r.Hook()
	hook("a", 1000)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []Event `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceEvents) != 1 || doc.TraceEvents[0].Phase != "X" {
		t.Fatalf("doc = %+v", doc)
	}
}

func TestSummaryAggregatesPerPhase(t *testing.T) {
	r := New()
	hook := r.Hook()
	hook("stepA", 100)
	hook("stepB", 300)
	hook("stepA", 400)
	var buf bytes.Buffer
	if err := r.Summary(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "stepA") || !strings.Contains(out, "stepB") {
		t.Fatalf("summary missing phases:\n%s", out)
	}
	if strings.Count(out, "stepA") != 1 {
		t.Fatal("summary must aggregate repeated phases")
	}
}

func TestEventsReturnsCopy(t *testing.T) {
	r := New()
	r.Hook()("x", 10)
	ev := r.Events()
	ev[0].Name = "mutated"
	if r.Events()[0].Name != "x" {
		t.Fatal("Events exposed internal storage")
	}
}
